open Dessim
open Bftcrypto
open Bftnet
open Bftapp
open Pbftcore.Types
module Spans = Bftspan.Tracer

type faults = {
  mutable flood_targets : int list;
  mutable flood_size : int;
  mutable flood_rate : float;
  mutable no_propagate : bool;
  mutable drop_client_requests : bool;
}

(* One committed batch travelling from a replica's delivery to the
   global merge (concurrent ordering): the descriptors with their
   ordering-chain spans, and the commit instant so the Sequence span
   covers exactly the committed -> merged interval. *)
type seq_batch = {
  sb_descs : (request_desc * int) list;
  sb_committed : Time.t;
}

(* State of the concurrent (bftrcc) ordering mode; absent in the
   paper's redundant mode. *)
type rcc = {
  partitioner : Bftrcc.Partitioner.t;
  sequencer : seq_batch Bftrcc.Sequencer.t;
  (* Degrade path: while [degraded.(i)] every primary also proposes
     partition i's requests (classic redundant fallback); cleared when
     instance i delivers a batch in [degrade_target.(i)] or later. *)
  degraded : bool array;
  degrade_target : int array;
  (* While a partition is degraded every instance orders foreign
     requests, so per-instance rates stop measuring per-partition
     service — the normalized Δ comparison would demote on its own
     fallback traffic. Rate-based suspicion is suppressed while any
     partition is degraded and until the moving windows have flushed
     the fallback samples ([quiet_until], set on change and clear). *)
  mutable quiet_until : Time.t;
  (* Per-owner PROPAGATE-BATCH accumulation (reversed), flushed by
     size or timer on the owner's lane. *)
  prop_buf : Messages.request list array;
  prop_len : int array;
  prop_timer : bool array;
}

(* Book-keeping for one request on its way through the node. *)
type request_state = {
  first_seen : Time.t;  (* when this node first learned of the request *)
  mutable req : Messages.request option;  (* full request, once known *)
  senders : Pbftcore.Voteset.t;  (* distinct PROPAGATE senders (incl. self) *)
  mutable propagated : bool;  (* we sent our own PROPAGATE *)
  mutable sig_checked : bool;
  mutable sig_inflight : bool;  (* a verification job is pending *)
  mutable dispatched : bool;
  mutable dispatch_time : Time.t;
  mutable span : int;  (* latest span of this request on this node; -1 untraced *)
}

(* Metric handles, registered once per node; hot paths only mutate
   them behind the [Registry.active] gate. *)
type node_metrics = {
  nm_received : Bftmetrics.Registry.Counter.t;
  nm_dispatched : Bftmetrics.Registry.Counter.t;
  nm_executed : Bftmetrics.Registry.Counter.t;
  nm_instance_changes : Bftmetrics.Registry.Counter.t;
  nm_dispatch_latency : Bftmetrics.Hist.t;  (* first seen -> dispatched *)
  nm_ordering_latency : Bftmetrics.Hist.t array;  (* dispatch -> ordered *)
  nm_execution_latency : Bftmetrics.Hist.t;  (* dispatch -> executed *)
  nm_master_rate : Bftmetrics.Registry.Gauge.t;
  nm_backup_rate : Bftmetrics.Registry.Gauge.t;
  nm_ratio : Bftmetrics.Registry.Gauge.t;
  nm_delta : Bftmetrics.Registry.Gauge.t;
}

let register_node_metrics ~id ~instances =
  let module Registry = Bftmetrics.Registry in
  let reg = Registry.default in
  let node = string_of_int id in
  let counter name help =
    Registry.counter reg name ~help ~labels:[ ("node", node) ]
  in
  let gauge name help =
    Registry.gauge reg name ~help ~labels:[ ("node", node) ]
  in
  {
    nm_received = counter "bft_requests_received_total"
        "Fresh client requests entering verification";
    nm_dispatched = counter "bft_requests_dispatched_total"
        "Requests handed to the local replicas";
    nm_executed = counter "bft_requests_executed_total"
        "Requests executed and replied to";
    nm_instance_changes = counter "bft_instance_changes_total"
        "Protocol instance changes performed";
    nm_dispatch_latency =
      Registry.histogram reg "bft_request_dispatch_latency_seconds"
        ~help:"First sight of a request to replica dispatch"
        ~labels:[ ("node", node) ];
    nm_ordering_latency =
      Array.init instances (fun i ->
          Registry.histogram reg "bft_ordering_latency_seconds"
            ~help:"Replica dispatch to total-order delivery"
            ~labels:[ ("node", node); ("instance", string_of_int i) ]);
    nm_execution_latency =
      Registry.histogram reg "bft_execution_latency_seconds"
        ~help:"Replica dispatch to execution completion"
        ~labels:[ ("node", node) ];
    nm_master_rate = gauge "bft_monitor_master_rate"
        "Monitoring: averaged master-instance throughput (req/s)";
    nm_backup_rate = gauge "bft_monitor_backup_rate"
        "Monitoring: averaged mean backup-instance throughput (req/s)";
    nm_ratio = gauge "bft_monitor_ratio"
        "Monitoring: master/backup throughput ratio the delta test checks";
    nm_delta = gauge "bft_monitor_delta_threshold"
        "Monitoring: configured delta acceptance threshold";
  }

type t = {
  engine : Engine.t;
  clock : Clock.t;  (* local periodic timers; skewable by the chaos engine *)
  net : Messages.t Network.t;
  params : Params.t;
  id : int;
  service : Service.t;
  (* Module threads (Figure 6), each on its own core. *)
  verification : Resource.t;
  propagation : Resource.t;
  dispatch : Resource.t;
  execution : Resource.t;
  (* Sharded execution lanes ([params.exec_shards] > 1): requests whose
     service declares a shard key execute on the key's lane instead of
     the serial execution thread. Empty in the default configuration. *)
  execution_shards : Resource.t array;
  admission : Bftflow.Admission.t;
  (* Requests holding an admission-gate slot ({!Bftflow.Admission}),
     keyed at ingress triage time — before any tracking state exists —
     and released exactly once when the request executes, is dropped,
     or its client is blacklisted. Empty while the gate is disabled. *)
  admission_held : unit Request_id_table.t;
  (* Sharded mode: requests whose execution has been submitted (and
     whose digest is already chained); the dedup the serial path gets
     from checking [executed] at completion time. *)
  exec_started : unit Request_id_table.t;
  replica_threads : Resource.t array;
  mutable replicas : Pbftcore.Replica.t array;
  faults : faults;
  monitoring : Monitoring.t;
  requests : request_state Request_id_table.t;
  executed : Replycache.t;  (* last-window results per client, for re-replies *)
  (* Footprint probe over [requests], noted on insertion so peaks are
     exact between sampler ticks; bound in [create]. *)
  mutable fp_requests : Bftcap.Footprint.t option;
  exec_counter : Bftmetrics.Throughput.t;
  mutable exec_count : int;
  mutable exec_digest : string;
  mutable blacklist : int list;  (* clients *)
  (* Protocol instance change state. *)
  mutable cpi : int;
  mutable suspicious : bool;  (* current monitoring verdict *)
  (* Instance-change votes: per node the highest cpi it voted for, and
     the bitset of nodes whose vote covers the *current* cpi (rebuilt
     from the array on the rare cpi advance, O(1) on the quorum
     check). *)
  ic_vote_cpi : int array;
  ic_votes : Pbftcore.Voteset.t;
  mutable ic_sent_for : int;  (* last cpi we voted for; -1 = none *)
  mutable instance_changes : int;
  mutable last_change_at : Time.t;
  mutable master_instance : int;
  (* Flood defence: invalid messages per peer in the current window. *)
  invalid_counts : int array;
  mutable latency_probe : (instance:int -> client:int -> Time.t -> unit) option;
  mutable started : bool;
  mutable rcc : rcc option;  (* concurrent (bftrcc) ordering state *)
  m : node_metrics;
}

let id t = t.id
let params t = t.params
let faults t = t.faults
let replica t ~instance = t.replicas.(instance)
let monitoring t = t.monitoring
let master_instance t = t.master_instance
let executed_count t = t.exec_count
let executed_counter t = t.exec_counter
let execution_digest t = t.exec_digest
let cpi t = t.cpi
let instance_changes t = t.instance_changes
let blacklisted_clients t = t.blacklist
let is_blacklisted t ~client = List.mem client t.blacklist
let suspicious t = t.suspicious
let ic_vote_count t = Pbftcore.Voteset.count t.ic_votes
let ordering t = t.params.Params.ordering

let sequencer_stats t =
  match t.rcc with
  | Some rcc -> Some (Bftrcc.Sequencer.stats rcc.sequencer)
  | None -> None

let degraded_partitions t =
  match t.rcc with
  | None -> []
  | Some rcc ->
    let acc = ref [] in
    Array.iteri (fun i d -> if d then acc := i :: !acc) rcc.degraded;
    List.rev !acc

let partition_owner t ~client =
  match t.rcc with
  | Some rcc -> Bftrcc.Partitioner.owner rcc.partitioner ~client
  | None -> Params.master_instance

let ic_vote_cpi_of t ~node =
  if node >= 0 && node < Array.length t.ic_vote_cpi then t.ic_vote_cpi.(node)
  else -1

(* Chaos knobs: per-node clock drift and CPU slowdown. *)
let set_clock_factor t k = Clock.set_factor t.clock k

let set_cpu_factor t s =
  List.iter
    (fun r -> Resource.set_speed r s)
    ([ t.verification; t.propagation; t.dispatch; t.execution ]
    @ Array.to_list t.execution_shards
    @ Array.to_list t.replica_threads)

let admission_inflight t = Bftflow.Admission.inflight t.admission
let admission_shed t = Bftflow.Admission.shed_total t.admission

let costs t = t.params.Params.costs
let n_nodes t = Params.n t.params
let instance_count t = Params.instances t.params

let self t = Principal.node t.id

(* Structured audit events; call sites guard with [Bus.active] so the
   disabled path allocates nothing. Node-level events that are not
   tied to one ordering instance use instance -1. *)
let audit t ?(instance = -1) kind =
  Bftaudit.Bus.emit
    { Bftaudit.Event.time = Engine.now t.engine; node = t.id; instance; kind }

(* ------------------------------------------------------------------ *)
(* Outbound helpers: charge the sending thread, then hit the network. *)
(* ------------------------------------------------------------------ *)

let msg_size t msg =
  Messages.wire_size msg ~n:(n_nodes t)
    ~order_full_requests:t.params.Params.order_full_requests

(* CPU byte-accounting per message class:
   - client REQUESTs are copied several times on the verification path
     (NIC buffer, verification pass, hand-off to propagation) — the
     dominant per-byte cost at large request sizes, matching the
     paper's crypto-bound Verification module;
   - PROPAGATEs are forwarded by reference once verified (the
     Propagation module enqueues, it does not re-serialize bodies);
   - with the order-full-requests ablation, PRE-PREPAREs carry whole
     bodies that get copied repeatedly (compare the Aardvark
     baseline); identifiers-only RBFT never pays this. *)
let cost_bytes t msg =
  let size = msg_size t msg in
  match msg with
  | Messages.Request { desc; _ } ->
    (* Headers and authenticators are read once; the operation body is
       what gets copied across buffers. *)
    size + (3 * desc.op_size)
  | Messages.Propagate _ | Messages.Propagate_batch _ -> (2 * size) / 5
  | Messages.Instance { msg = Pbftcore.Messages.Pre_prepare _; _ }
    when t.params.Params.order_full_requests ->
    6 * size
  | Messages.Instance _ | Messages.Instance_change _ | Messages.Reply _
  | Messages.Busy _ ->
    size

let send_from ?(span = -1) ?span_tag t thread ~dst msg =
  let size = msg_size t msg in
  Resource.charge thread (Costmodel.send (costs t) ~bytes:(cost_bytes t msg));
  Network.send ~span ?span_tag t.net ~src:(self t) ~dst ~size msg

let broadcast_nodes_from ?(span = -1) t thread msg =
  let size = msg_size t msg in
  (* One MAC authenticator covers all destinations. *)
  Resource.charge thread
    (Costmodel.authenticator_gen (costs t) ~bytes:size ~count:(n_nodes t));
  for dst = 0 to n_nodes t - 1 do
    if dst <> t.id then begin
      Resource.charge thread (Costmodel.send (costs t) ~bytes:(cost_bytes t msg));
      Network.send ~span t.net ~src:(self t) ~dst:(Principal.node dst) ~size msg
    end
  done

(* ------------------------------------------------------------------ *)
(* Request tracking                                                   *)
(* ------------------------------------------------------------------ *)

let request_state t rid =
  match Request_id_table.find_opt t.requests rid with
  | Some state -> state
  | None ->
    let state =
      {
        first_seen = Engine.now t.engine;
        req = None;
        senders = Pbftcore.Voteset.create ~n:(n_nodes t);
        propagated = false;
        sig_checked = false;
        sig_inflight = false;
        dispatched = false;
        dispatch_time = Time.zero;
        span = -1;
      }
    in
    Request_id_table.add t.requests rid state;
    (match t.fp_requests with Some p -> Bftcap.Footprint.note p | None -> ());
    state

(* ------------------------------------------------------------------ *)
(* Dispatch: hand a request to the f+1 local replicas (step 2 end).   *)
(* ------------------------------------------------------------------ *)

let dispatch_request t ~span (req : Messages.request) =
  let state = request_state t req.desc.id in
  if not state.dispatched then begin
    state.dispatched <- true;
    state.dispatch_time <- Engine.now t.engine;
    if Bftmetrics.Registry.active () then begin
      Bftmetrics.Registry.Counter.inc t.m.nm_dispatched;
      Bftmetrics.Hist.add t.m.nm_dispatch_latency
        (Time.to_sec_f (Time.sub state.dispatch_time state.first_seen))
    end;
    if Bftaudit.Bus.active () then
      audit t
        (Bftaudit.Event.Request_dispatched
           { client = req.desc.id.client; rid = req.desc.id.rid });
    (* Concurrent ordering: count the request against its owning
       partition so monitoring can normalize observed rates by the
       offered load per instance. *)
    (match t.rcc with
     | Some rcc ->
       Monitoring.note_offered t.monitoring
         ~instance:
           (Bftrcc.Partitioner.owner rcc.partitioner ~client:req.desc.id.client)
         ~count:1
     | None -> ());
    Array.iteri
      (fun i replica_thread ->
        let replica = t.replicas.(i) in
        let rspan =
          Spans.job ~parent:span ~tag:Bftspan.Tag.Dispatch ~node:t.id
            ~instance:i ~now:state.dispatch_time
        in
        Resource.submit ~span:rspan replica_thread ~cost:(Time.ns 200)
          (fun () -> Pbftcore.Replica.submit ~span:rspan replica req.desc))
      t.replica_threads
  end

(* ------------------------------------------------------------------ *)
(* Propagation module (step 2)                                        *)
(* ------------------------------------------------------------------ *)

(* Hand over to the replicas once the f+1 PROPAGATE guard holds and
   the signature is known-good. *)
let maybe_dispatch t (state : request_state) =
  match state.req with
  | Some r
    when state.sig_checked && (not state.dispatched)
         && Pbftcore.Voteset.count state.senders >= t.params.Params.f + 1 ->
    let dspan =
      Spans.job ~parent:state.span ~tag:Bftspan.Tag.Dispatch ~node:t.id
        ~instance:(-1) ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:dspan t.dispatch ~cost:(Time.ns 200) (fun () ->
        dispatch_request t ~span:dspan r)
  | Some _ | None -> ()

let note_sender t (state : request_state) sender req =
  (match (state.req, req) with
   | None, Some r -> state.req <- Some r
   | None, None | Some _, _ -> ());
  if Pbftcore.Voteset.add state.senders sender then maybe_dispatch t state

(* Concurrent ordering: own PROPAGATEs are accumulated per owning
   instance and broadcast as one PROPAGATE-BATCH from the owner's lane
   — one batch authenticator instead of per-request MAC vectors, which
   is what buys the concurrent mode its network headroom. *)
let flush_prop t rcc owner =
  if rcc.prop_len.(owner) > 0 then begin
    let reqs = List.rev rcc.prop_buf.(owner) in
    rcc.prop_buf.(owner) <- [];
    rcc.prop_len.(owner) <- 0;
    broadcast_nodes_from t t.replica_threads.(owner)
      (Messages.Propagate_batch { reqs; owner; from = t.id })
  end

let buffer_propagate t rcc (req : Messages.request) =
  let owner =
    Bftrcc.Partitioner.owner rcc.partitioner ~client:req.desc.id.client
  in
  rcc.prop_buf.(owner) <- req :: rcc.prop_buf.(owner);
  rcc.prop_len.(owner) <- rcc.prop_len.(owner) + 1;
  if rcc.prop_len.(owner) >= t.params.Params.propagate_batch then
    Resource.submit t.replica_threads.(owner) ~cost:(Time.ns 200) (fun () ->
        flush_prop t rcc owner)
  else if not rcc.prop_timer.(owner) then begin
    rcc.prop_timer.(owner) <- true;
    ignore
      (Clock.after t.clock t.params.Params.propagate_batch_delay (fun () ->
           rcc.prop_timer.(owner) <- false;
           Resource.submit t.replica_threads.(owner) ~cost:(Time.ns 200)
             (fun () -> flush_prop t rcc owner)))
  end

let propagate_request t (req : Messages.request) =
  let state = request_state t req.desc.id in
  if not state.propagated then begin
    state.propagated <- true;
    if not t.faults.no_propagate then begin
      if Bftaudit.Bus.active () then
        audit t
          (Bftaudit.Event.Request_propagated
             { client = req.desc.id.client; rid = req.desc.id.rid });
      match t.rcc with
      | Some rcc -> buffer_propagate t rcc req
      | None ->
        broadcast_nodes_from ~span:state.span t t.propagation
          (Messages.Propagate { req; from = t.id; junk = false })
    end
  end;
  note_sender t state t.id (Some req)

(* ------------------------------------------------------------------ *)
(* Flood defence                                                      *)
(* ------------------------------------------------------------------ *)

let note_invalid_from t peer =
  if peer >= 0 && peer < n_nodes t then begin
    t.invalid_counts.(peer) <- t.invalid_counts.(peer) + 1;
    if t.invalid_counts.(peer) > t.params.Params.flood_threshold then begin
      t.invalid_counts.(peer) <- 0;
      if Bftaudit.Bus.active () then
        audit t
          (Bftaudit.Event.Nic_closed
             {
               peer;
               until =
                 Time.add (Engine.now t.engine) t.params.Params.flood_close_time;
             });
      Network.close_nic t.net ~node:t.id ~peer:(Principal.node peer)
        ~for_:t.params.Params.flood_close_time
    end
  end

(* ------------------------------------------------------------------ *)
(* Verification module (step 1)                                       *)
(* ------------------------------------------------------------------ *)

let reply_to ?(span = -1) ?thread t (id : request_id) result =
  let thread = match thread with Some r -> r | None -> t.execution in
  send_from ~span ~span_tag:Bftspan.Tag.Reply t thread
    ~dst:(Principal.client id.client)
    (Messages.Reply { id; result; node = t.id })

(* Backpressure reply (admission gate). Charged to the propagation
   thread, not verification: the whole point of shedding is to keep the
   verification stage's cycles for admitted traffic, so the refusal
   path must not consume them generating BUSY authenticators. *)
let busy_to t (id : request_id) retry_after =
  send_from t t.propagation
    ~dst:(Principal.client id.client)
    (Messages.Busy { id; retry_after; node = t.id })

(* Release the admission slot a request holds, exactly once. *)
let release_admission t (id : request_id) =
  if Request_id_table.mem t.admission_held id then begin
    Request_id_table.remove t.admission_held id;
    Bftflow.Admission.release t.admission
  end

(* Schedule the (single) signature verification for a request on the
   verification thread, then resume on the propagation thread. Runs at
   most once per request: concurrent callers find [sig_inflight]. *)
let verify_signature_once t (req : Messages.request) =
  let state = request_state t req.desc.id in
  if (not state.sig_checked) && not state.sig_inflight then begin
    state.sig_inflight <- true;
    (* Concurrent ordering: the signature check and the post-verify
       propagate run on the owning partition's lane, so per-request
       crypto scales with the number of instances instead of
       serialising on the single verification thread. *)
    let lane =
      match t.rcc with
      | Some rcc ->
        Some
          t.replica_threads.(Bftrcc.Partitioner.owner rcc.partitioner
                               ~client:req.desc.id.client)
      | None -> None
    in
    let thread = match lane with Some r -> r | None -> t.verification in
    let vspan =
      Spans.job ~parent:state.span ~tag:Bftspan.Tag.Crypto_verify ~node:t.id
        ~instance:(-1) ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:vspan thread
      ~cost:(Costmodel.sig_verify (costs t) ~bytes:req.desc.op_size)
      (fun () ->
        state.sig_inflight <- false;
        if req.sig_valid then begin
          state.sig_checked <- true;
          if vspan >= 0 then state.span <- vspan;
          match lane with
          | Some _ ->
            propagate_request t req;
            maybe_dispatch t state
          | None ->
            let pspan =
              Spans.job ~parent:state.span ~tag:Bftspan.Tag.Propagate
                ~node:t.id ~instance:(-1) ~now:(Engine.now t.engine)
            in
            Resource.submit ~span:pspan t.propagation ~cost:(Time.ns 200)
              (fun () ->
                if pspan >= 0 then state.span <- pspan;
                propagate_request t req;
                maybe_dispatch t state)
        end
        else begin
          (* The request will never execute; its admission slot must
             not leak. *)
          release_admission t req.desc.id;
          if not (List.mem req.desc.id.client t.blacklist) then begin
            (* Invalid signature: blacklist the client (Sec. IV-B, step 1). *)
            if Bftaudit.Bus.active () then
              audit t (Bftaudit.Event.Blacklisted { client = req.desc.id.client });
            t.blacklist <- req.desc.id.client :: t.blacklist
          end
        end)
  end

(* Runs on the verification thread (MAC cost already charged). *)
let handle_client_request t ~span (req : Messages.request) =
  (* Drop paths must release any admission slot ingress triage granted
     before this handler ran; [release_admission] is a no-op when the
     request holds none. *)
  if t.faults.drop_client_requests then release_admission t req.desc.id
  else if List.mem req.desc.id.client t.blacklist then
    release_admission t req.desc.id
  else if List.mem t.id req.mac_invalid_for then
    (* The authenticator entry for this node is broken: drop. *)
    release_admission t req.desc.id
  else if
    Replycache.seen t.executed ~client:req.desc.id.client ~rid:req.desc.id.rid
  then begin
    (* Already executed: resend the reply (Section IV-B, step 1). A rid
       old enough to have left the client's reply ring is dropped
       silently — that client long since received its reply and moved
       on (classic PBFT last-reply semantics). *)
    release_admission t req.desc.id;
    match
      Replycache.find t.executed ~client:req.desc.id.client ~rid:req.desc.id.rid
    with
    | Some result -> reply_to t req.desc.id result
    | None -> ()
  end
  else begin
    if Bftmetrics.Registry.active () then
      Bftmetrics.Registry.Counter.inc t.m.nm_received;
    if Bftaudit.Bus.active () then
      audit t
        (Bftaudit.Event.Request_received
           {
             client = req.desc.id.client;
             rid = req.desc.id.rid;
             size = req.desc.op_size;
           });
    let state = request_state t req.desc.id in
    if state.span < 0 && span >= 0 then state.span <- span;
    if state.sig_checked then begin
      match t.rcc with
      | Some rcc ->
        let owner =
          Bftrcc.Partitioner.owner rcc.partitioner ~client:req.desc.id.client
        in
        Resource.submit t.replica_threads.(owner) ~cost:(Time.ns 200)
          (fun () -> propagate_request t req)
      | None ->
        Resource.submit t.propagation ~cost:(Time.ns 200) (fun () ->
            propagate_request t req)
    end
    else verify_signature_once t req
  end

(* Runs on the propagation thread (MAC cost already charged). *)
let handle_propagate t ~span ~from (req : Messages.request) ~junk =
  if junk then note_invalid_from t from
  else if
    (* With the request-GC sweep on, a straggler PROPAGATE for a
       request whose tracking state was already swept must not
       resurrect it — the fresh state would never dispatch and so
       never be swept again. Gated on the sweep so default-config
       behaviour (and model-checker fingerprints) are untouched. *)
    t.params.Params.request_gc_age > Time.zero
    && (not (Request_id_table.mem t.requests req.desc.id))
    && Replycache.seen t.executed ~client:req.desc.id.client
         ~rid:req.desc.id.rid
  then ()
  else begin
    let state = request_state t req.desc.id in
    if state.span < 0 && span >= 0 then state.span <- span;
    note_sender t state from (Some req);
    if state.sig_checked then begin
      if not state.propagated then propagate_request t req
    end
    else verify_signature_once t req
  end

(* ------------------------------------------------------------------ *)
(* Protocol instance change (Section IV-D)                            *)
(* ------------------------------------------------------------------ *)

(* Re-derive the current-cpi voter bitset from the per-node maxima;
   only runs when [t.cpi] advances. *)
let rebuild_ic_votes t =
  Pbftcore.Voteset.clear t.ic_votes;
  Array.iteri
    (fun node c -> if c >= t.cpi then ignore (Pbftcore.Voteset.add t.ic_votes node))
    t.ic_vote_cpi

let note_ic_vote t ~from ~cpi =
  if from >= 0 && from < n_nodes t && cpi > t.ic_vote_cpi.(from) then begin
    t.ic_vote_cpi.(from) <- cpi;
    if cpi >= t.cpi then ignore (Pbftcore.Voteset.add t.ic_votes from)
  end

let perform_instance_change t target_cpi =
  if Bftmetrics.Registry.active () then
    Bftmetrics.Registry.Counter.inc t.m.nm_instance_changes;
  if Bftaudit.Bus.active () then
    audit t ~instance:t.master_instance
      (Bftaudit.Event.Instance_changed { cpi = target_cpi; recovery = false });
  t.cpi <- target_cpi + 1;
  t.instance_changes <- t.instance_changes + 1;
  t.last_change_at <- Engine.now t.engine;
  t.suspicious <- false;
  rebuild_ic_votes t;
  (* Concurrent ordering degrade path: Change_primaries rotates every
     primary, so any partition may momentarily be headless. Until each
     instance delivers in its new view, every primary also proposes
     the other partitions' requests (classic redundant fallback) —
     requests keep executing through the churn. *)
  (match (t.rcc, t.params.Params.recovery) with
   | Some rcc, Params.Change_primaries ->
     Array.iteri
       (fun i _ ->
         rcc.degrade_target.(i) <- Pbftcore.Replica.view t.replicas.(i) + 1;
         if not rcc.degraded.(i) then begin
           rcc.degraded.(i) <- true;
           if Bftaudit.Bus.active () then
             audit t ~instance:i
               (Bftaudit.Event.Degrade_changed { instance = i; active = true })
         end)
       rcc.degraded;
     rcc.quiet_until <-
       Time.add t.last_change_at
         (Time.mul_f t.params.Params.monitoring_period 4.0)
   | Some _, Params.Switch_master | None, _ -> ());
  match t.params.Params.recovery with
  | Params.Change_primaries ->
    Array.iter (fun r -> Pbftcore.Replica.force_view_change r) t.replicas
  | Params.Switch_master ->
    t.master_instance <- (t.master_instance + 1) mod instance_count t;
    Monitoring.set_master t.monitoring t.master_instance

(* The correct quorum is 2f+1; [ic_quorum] is the mutation knob the
   model checker uses to plant a detectable protocol bug. *)
let ic_quorum t =
  match t.params.Params.ic_quorum with
  | Some q -> q
  | None -> (2 * t.params.Params.f) + 1

let check_ic_quorum t =
  if Pbftcore.Voteset.count t.ic_votes >= ic_quorum t then
    perform_instance_change t t.cpi

let send_instance_change t =
  if t.ic_sent_for < t.cpi then begin
    t.ic_sent_for <- t.cpi;
    note_ic_vote t ~from:t.id ~cpi:t.cpi;
    if Bftaudit.Bus.active () then
      audit t ~instance:t.master_instance
        (Bftaudit.Event.Instance_change_vote { cpi = t.cpi });
    broadcast_nodes_from t t.dispatch
      (Messages.Instance_change { cpi = t.cpi; node = t.id });
    check_ic_quorum t
  end

let handle_instance_change t ~from ~cpi =
  if cpi >= t.cpi then begin
    note_ic_vote t ~from ~cpi;
    (* Vote along only if this node also observes the problem. *)
    if t.suspicious then send_instance_change t;
    check_ic_quorum t
  end

(* ------------------------------------------------------------------ *)
(* Ordered batches coming back from the replicas                      *)
(* ------------------------------------------------------------------ *)

let execute_request t ~span (desc : request_desc) =
  let seen () =
    Replycache.seen t.executed ~client:desc.id.client ~rid:desc.id.rid
  in
  if not (seen ()) then begin
    let cost = Time.max t.params.Params.exec_cost (t.service.Service.exec_cost desc.op) in
    let espan =
      Spans.job ~parent:span ~tag:Bftspan.Tag.Execution ~node:t.id
        ~instance:t.master_instance ~now:(Engine.now t.engine)
    in
    if Array.length t.execution_shards = 0 then
      Resource.submit ~span:espan t.execution ~cost (fun () ->
          if not (seen ()) then begin
            let result = t.service.Service.execute desc.op in
            Replycache.mark t.executed ~client:desc.id.client
              ~rid:desc.id.rid ~result;
            t.exec_count <- t.exec_count + 1;
            if Bftaudit.Bus.active () then
              audit t ~instance:t.master_instance
                (Bftaudit.Event.Executed
                   {
                     client = desc.id.client;
                     rid = desc.id.rid;
                     digest = desc.digest;
                   });
            Bftmetrics.Throughput.record t.exec_counter ~now:(Engine.now t.engine);
            if Bftmetrics.Registry.active () then begin
              Bftmetrics.Registry.Counter.inc t.m.nm_executed;
              match Request_id_table.find_opt t.requests desc.id with
              | Some state when state.dispatched ->
                Bftmetrics.Hist.add t.m.nm_execution_latency
                  (Time.to_sec_f
                     (Time.sub (Engine.now t.engine) state.dispatch_time))
              | Some _ | None -> ()
            end;
            t.exec_digest <-
              Sha256.digest_string (t.exec_digest ^ desc.digest);
            release_admission t desc.id;
            Resource.charge t.execution
              (Costmodel.mac_gen (costs t) ~bytes:(String.length result + 16));
            reply_to ~span:espan t desc.id result
          end)
    else if not (Request_id_table.mem t.exec_started desc.id) then begin
      (* Sharded execution. The digest is chained here, at submission
         time on the dispatch thread: submissions happen in total order
         on every correct node, so the chains stay equal across nodes
         even though completions interleave per shard. Requests without
         a shard key fall back to the serial execution thread (itself a
         lane as far as ordering is concerned: per-lane FIFO, total
         order only per key). *)
      Request_id_table.replace t.exec_started desc.id ();
      t.exec_digest <- Sha256.digest_string (t.exec_digest ^ desc.digest);
      let lane =
        match t.service.Service.shard_key desc.op with
        | Some key ->
          t.execution_shards.(Bftflow.Shard.index
                                ~shards:(Array.length t.execution_shards)
                                key)
        | None -> t.execution
      in
      Resource.submit ~span:espan lane ~cost (fun () ->
          let result = t.service.Service.execute desc.op in
          Replycache.mark t.executed ~client:desc.id.client ~rid:desc.id.rid
            ~result;
          (* The reply cache now answers post-completion duplicates, so
             the started-marker is dead weight: drop it to keep the
             table O(in-flight) instead of O(ever-executed). *)
          Request_id_table.remove t.exec_started desc.id;
          t.exec_count <- t.exec_count + 1;
          if Bftaudit.Bus.active () then
            audit t ~instance:t.master_instance
              (Bftaudit.Event.Executed
                 {
                   client = desc.id.client;
                   rid = desc.id.rid;
                   digest = desc.digest;
                 });
          Bftmetrics.Throughput.record t.exec_counter ~now:(Engine.now t.engine);
          if Bftmetrics.Registry.active () then begin
            Bftmetrics.Registry.Counter.inc t.m.nm_executed;
            match Request_id_table.find_opt t.requests desc.id with
            | Some state when state.dispatched ->
              Bftmetrics.Hist.add t.m.nm_execution_latency
                (Time.to_sec_f
                   (Time.sub (Engine.now t.engine) state.dispatch_time))
            | Some _ | None -> ()
          end;
          release_admission t desc.id;
          Resource.charge lane
            (Costmodel.mac_gen (costs t) ~bytes:(String.length result + 16));
          reply_to ~span:espan ~thread:lane t desc.id result)
    end
  end

(* Concurrent ordering: the sequencer's emit callback. Every correct
   node merges the same per-instance streams in the same round-robin
   order, so executing here preserves the redundant mode's safety
   argument with the merge order as the global execution order. *)
let seq_emit t ~instance (b : seq_batch) =
  let now = Engine.now t.engine in
  List.iter
    (fun ((desc : request_desc), ospan) ->
      let sspan =
        Spans.span ~parent:ospan ~tag:Bftspan.Tag.Sequence ~node:t.id
          ~instance ~t0:b.sb_committed ~t1:now
      in
      execute_request t ~span:(if sspan >= 0 then sspan else ospan) desc)
    b.sb_descs

let on_ordered t ~instance ~seq descs =
  (* Runs on the dispatch & monitoring thread. *)
  Monitoring.note_ordered t.monitoring ~instance ~count:(List.length descs);
  let now = Engine.now t.engine in
  let is_master = instance = t.master_instance in
  let pairs = ref [] in
  List.iter
    (fun (desc : request_desc) ->
      (* Collect (and clear) the ordering-chain span recorded by this
         instance's replica; every instance must collect its own so the
         table drains, but only the master's parents execution. *)
      let ospan =
        if Spans.active () then
          Pbftcore.Replica.take_span t.replicas.(instance) ~id:desc.id
        else -1
      in
      (match Request_id_table.find_opt t.requests desc.id with
       | Some state when state.dispatched ->
         let latency = Time.sub now state.dispatch_time in
         Monitoring.note_latency t.monitoring ~instance ~client:desc.id.client
           latency;
         if Bftmetrics.Registry.active () then
           Bftmetrics.Hist.add
             t.m.nm_ordering_latency.(instance)
             (Time.to_sec_f latency);
         (match t.latency_probe with
          | Some probe -> probe ~instance ~client:desc.id.client latency
          | None -> ());
         (* Requests dispatched before the last instance change were
            held by the previous primary; their latency says nothing
            about the current one. *)
         if is_master && state.dispatch_time >= t.last_change_at then begin
           let lambda = Monitoring.lambda_violation t.monitoring ~latency in
           let omega =
             Monitoring.omega_violation t.monitoring ~client:desc.id.client
           in
           if lambda || omega then begin
             if Bftaudit.Bus.active () then begin
               if lambda then
                 audit t ~instance
                   (Bftaudit.Event.Lambda_exceeded
                      { client = desc.id.client; latency });
               if omega then
                 audit t ~instance
                   (Bftaudit.Event.Omega_exceeded { client = desc.id.client })
             end;
             t.suspicious <- true;
             send_instance_change t
           end
         end
       | Some _ | None -> ());
      match t.rcc with
      | Some _ -> pairs := (desc, ospan) :: !pairs
      | None -> if is_master then execute_request t ~span:ospan desc)
    descs;
  match t.rcc with
  | None -> ()
  | Some rcc ->
    (* A delivery in (or past) the degrade-target view means the
       instance's new primary is proposing again: end the fallback. *)
    if rcc.degraded.(instance)
       && Pbftcore.Replica.view t.replicas.(instance)
          >= rcc.degrade_target.(instance)
       && not (Pbftcore.Replica.in_view_change t.replicas.(instance))
    then begin
      rcc.degraded.(instance) <- false;
      (* The verdict averages the last 3 windows; one extra covers the
         partially-contaminated window in flight. *)
      rcc.quiet_until <-
        Time.add now (Time.mul_f t.params.Params.monitoring_period 4.0);
      if Bftaudit.Bus.active () then
        audit t ~instance
          (Bftaudit.Event.Degrade_changed { instance; active = false })
    end;
    Bftrcc.Sequencer.push rcc.sequencer ~instance ~seq ~now
      { sb_descs = List.rev !pairs; sb_committed = now }

(* ------------------------------------------------------------------ *)
(* Replica hosting                                                    *)
(* ------------------------------------------------------------------ *)

let make_replica t ~instance thread =
  let cfg =
    {
      Pbftcore.Replica.n = n_nodes t;
      f = t.params.Params.f;
      replica_id = t.id;
      instance;
      primary_of_view = (fun view -> Params.primary_of t.params ~instance ~view);
      batch_size = t.params.Params.batch_size;
      batch_delay = t.params.Params.batch_delay;
      checkpoint_interval = t.params.Params.checkpoint_interval;
      watermark_window = t.params.Params.watermark_window;
      order_full_requests = t.params.Params.order_full_requests;
      post_vc_quiet = t.params.Params.post_vc_quiet;
    }
  in
  let wrap msg = Messages.Instance { instance; msg } in
  let send dst msg = send_from t thread ~dst:(Principal.node dst) (wrap msg) in
  let broadcast msg = broadcast_nodes_from t thread (wrap msg) in
  let deliver seq descs =
    Resource.submit t.dispatch ~cost:(Time.ns 500) (fun () ->
        on_ordered t ~instance ~seq descs)
  in
  Pbftcore.Replica.create ~clock:t.clock t.engine cfg
    { Pbftcore.Replica.send; broadcast; deliver; on_view_change = (fun _ -> ()) }

(* ------------------------------------------------------------------ *)
(* Inbound routing                                                    *)
(* ------------------------------------------------------------------ *)

let on_delivery t (d : Messages.t Network.delivery) =
  let recv_cost = Costmodel.recv (costs t) ~bytes:(cost_bytes t d.Network.payload) in
  let mac_cost = Costmodel.mac_verify (costs t) ~bytes:d.Network.size in
  let base = Time.add recv_cost mac_cost in
  if d.Network.corrupted then
    (* Chaos-corrupted on the wire: the authenticator check fails. The
       node still pays the verification cost, and invalid traffic from a
       peer node feeds the flood defence exactly like junk messages. *)
    Resource.submit t.verification ~cost:base (fun () ->
        match d.Network.src with
        | Principal.Node i -> note_invalid_from t i
        | Principal.Client _ -> ())
  else
  match d.Network.payload with
  | Messages.Request req ->
    (* Admission triage ({!Bftflow.Admission}) runs at ingress, in the
       NIC poll loop: the decision reads only the request id from the
       message header, before any worker-core job is queued. The gate
       exists to protect the verification stage — at saturation that
       thread is 100% busy on per-request MAC + signature checks, so a
       refusal must cost it nothing at all (an early drop in the
       receive path, XDP-style); charging even the receive demux to
       shed traffic would let a retry storm consume the very cycles
       the gate is defending. The BUSY reply is charged to the
       propagation thread, which has slack at saturation. Only
       requests this node has never seen compete for a slot: a request
       already tracked, already holding a slot, or already executed is
       in the pipeline (re-sent by a retrying client) or arrived by
       PROPAGATE from peers, and refusing it now would deadlock
       requests half-admitted across the cluster. Refusal creates no
       tracking state, so a later retry is genuinely fresh. *)
    let id = req.desc.id in
    let fresh =
      Bftflow.Admission.enabled t.admission
      && (not (Request_id_table.mem t.requests id))
      && (not (Request_id_table.mem t.admission_held id))
      && (not (Replycache.seen t.executed ~client:id.client ~rid:id.rid))
      && not (List.mem id.client t.blacklist)
    in
    let verdict =
      if not fresh then Ok ()
      else
        Bftflow.Admission.admit t.admission
          ~backlog:(Resource.backlog t.verification)
    in
    (match verdict with
     | Error retry_after -> busy_to t id retry_after
     | Ok () ->
       if fresh then Request_id_table.replace t.admission_held id ();
       let vspan =
         Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Crypto_verify
           ~node:t.id ~instance:(-1) ~now:(Engine.now t.engine)
       in
       Resource.submit ~span:vspan t.verification ~cost:base (fun () ->
           handle_client_request t ~span:vspan req))
  | Messages.Propagate { req; from; junk } ->
    let pspan =
      Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Propagate ~node:t.id
        ~instance:(-1) ~now:(Engine.now t.engine)
    in
    (* In concurrent mode correct nodes send PROPAGATE-BATCH, so a
       single PROPAGATE is flood/junk traffic: charge it to the
       ingress (verification) thread it actually chokes. *)
    let thread =
      match t.rcc with Some _ -> t.verification | None -> t.propagation
    in
    Resource.submit ~span:pspan thread ~cost:base (fun () ->
        handle_propagate t ~span:pspan ~from req ~junk)
  | Messages.Propagate_batch { reqs; owner; from } ->
    (* Ingress demux reads the bytes on the verification thread; the
       batch authenticator and the per-request work are charged to the
       claimed owner's lane. The partitioner re-derives the real owner
       per request, so a lying [owner] field only misdirects CPU cost,
       never partition membership. *)
    Resource.submit t.verification ~cost:recv_cost (fun () ->
        if from >= 0 && from < n_nodes t && owner >= 0
           && owner < instance_count t
        then
          Resource.submit t.replica_threads.(owner) ~cost:mac_cost (fun () ->
              List.iter
                (fun req -> handle_propagate t ~span:(-1) ~from req ~junk:false)
                reqs))
  | Messages.Instance { instance; msg } ->
    if instance < instance_count t then begin
      let thread = t.replica_threads.(instance) in
      let from =
        match d.Network.src with
        | Principal.Node i -> i
        | Principal.Client _ -> -1
      in
      if from >= 0 then
        Resource.submit thread ~cost:base (fun () ->
            Pbftcore.Replica.receive t.replicas.(instance) ~from msg)
    end
  | Messages.Instance_change { cpi; node } ->
    Resource.submit t.dispatch ~cost:base (fun () ->
        handle_instance_change t ~from:node ~cpi)
  | Messages.Reply _ | Messages.Busy _ -> (* nodes never receive replies *) ()

(* ------------------------------------------------------------------ *)
(* Monitoring loop and flooding processes                             *)
(* ------------------------------------------------------------------ *)

let monitoring_tick t =
  let verdict = Monitoring.tick t.monitoring ~now:(Engine.now t.engine) in
  Array.fill t.invalid_counts 0 (Array.length t.invalid_counts) 0;
  (* Request-table GC ({!Params.request_gc_age} > 0): tracking state
     for a request that was dispatched, executed and has sat past the
     age is pure history — sweep it so the table stays O(in-flight)
     under population-scale load instead of O(ever-received). *)
  (let age = t.params.Params.request_gc_age in
   if age > Time.zero then begin
     let now = Engine.now t.engine in
     let stale =
       Request_id_table.fold
         (fun id rs acc ->
           if
             rs.dispatched
             && Replycache.seen t.executed ~client:id.client ~rid:id.rid
             && Time.sub now rs.first_seen >= age
           then id :: acc
           else acc)
         t.requests []
     in
     List.iter (fun id -> Request_id_table.remove t.requests id) stale
   end);
  if Bftmetrics.Registry.active () then begin
    Bftmetrics.Registry.Gauge.set t.m.nm_master_rate
      verdict.Monitoring.master_rate;
    Bftmetrics.Registry.Gauge.set t.m.nm_backup_rate
      verdict.Monitoring.backup_rate;
    Bftmetrics.Registry.Gauge.set t.m.nm_ratio verdict.Monitoring.ratio;
    Bftmetrics.Registry.Gauge.set t.m.nm_delta t.params.Params.delta
  end;
  if Bftaudit.Bus.active () then
    audit t ~instance:t.master_instance
      (Bftaudit.Event.Monitor_verdict
         {
           master_rate = verdict.Monitoring.master_rate;
           backup_rate = verdict.Monitoring.backup_rate;
           suspicious = verdict.Monitoring.suspicious;
         });
  (* Concurrent ordering: while any partition is degraded (and until
     the moving windows flush the fallback samples) every instance
     orders foreign requests, so the normalized Δ comparison is not
     measuring per-partition service — mute it rather than demote on
     our own fallback traffic. The stall check below stays live: it is
     what escalates past a dead incoming primary. *)
  let delta_muted =
    match t.rcc with
    | None -> false
    | Some rcc ->
      Array.exists Fun.id rcc.degraded
      || Engine.now t.engine < rcc.quiet_until
  in
  t.suspicious <- verdict.Monitoring.suspicious && not delta_muted;
  if t.suspicious then begin
    (* Allow re-voting for the current cpi each period while the
       problem persists. *)
    if t.ic_sent_for >= t.cpi then t.ic_sent_for <- t.cpi - 1;
    send_instance_change t
  end;
  (* Concurrent ordering: sample the merge sequencer's head-of-line
     state, and treat a long stall as grounds for an instance change —
     a crashed partition owner produces no batches at all, which the Δ
     rate comparison cannot see. All correct nodes observe the same
     stall, so the 2f+1 vote quorum forms. *)
  match t.rcc with
  | None -> ()
  | Some rcc ->
    let now = Engine.now t.engine in
    let stall = Bftrcc.Sequencer.stall rcc.sequencer ~now in
    if Bftaudit.Bus.active () then begin
      let st = Bftrcc.Sequencer.stats rcc.sequencer in
      let waiting_on, age =
        match stall with Some (i, a) -> (i, a) | None -> (-1, Time.zero)
      in
      audit t
        (Bftaudit.Event.Seq_stall
           { waiting_on; age; pending = st.Bftrcc.Sequencer.pending })
    end;
    (match stall with
     | Some (_, age)
       when t.params.Params.stall_change > Time.zero
            && age >= t.params.Params.stall_change ->
       t.suspicious <- true;
       if t.ic_sent_for >= t.cpi then t.ic_sent_for <- t.cpi - 1;
       send_instance_change t
     | Some _ | None -> ())

let rec arm_monitoring t =
  ignore
    (Clock.after t.clock t.params.Params.monitoring_period (fun () ->
         Resource.submit t.dispatch ~cost:(Time.us 2) (fun () -> monitoring_tick t);
         arm_monitoring t))

(* The flooding loop re-reads the fault configuration on every tick,
   so attacks can be switched on and off at any virtual time. *)
let start_flooding t =
  let junk_msg target =
    let desc = desc_of_op ~client:(-1) ~rid:target "junk" in
    Messages.Propagate
      {
        req =
          {
            desc = { desc with op_size = t.faults.flood_size };
            sig_valid = false;
            mac_invalid_for = [];
          };
        from = t.id;
        junk = true;
      }
  in
  let rec loop () =
    let rate = t.faults.flood_rate in
    let period =
      if rate > 0.0 then Time.of_sec_f (1.0 /. rate) else Time.ms 10
    in
    ignore
      (Clock.after t.clock period (fun () ->
           if t.faults.flood_rate > 0.0 then
             List.iter
               (fun target ->
                 let msg = junk_msg target in
                 let size = msg_size t msg in
                 Network.send t.net ~src:(self t) ~dst:(Principal.node target)
                   ~size msg)
               t.faults.flood_targets;
           loop ()))
  in
  loop ()

let create engine net params ~id ~service =
  let mk name = Resource.create engine ~name:(Printf.sprintf "n%d.%s" id name) in
  let instances = Params.instances params in
  let t =
    {
      engine;
      clock = Clock.create engine;
      net;
      params;
      id;
      service;
      verification = mk "verification";
      propagation = mk "propagation";
      dispatch = mk "dispatch";
      execution = mk "execution";
      execution_shards =
        (if params.Params.exec_shards > 1 then
           Array.init params.Params.exec_shards (fun i ->
               mk (Printf.sprintf "exec%d" i))
         else [||]);
      admission_held = Request_id_table.create 256;
      admission =
        Bftflow.Admission.create ~budget:params.Params.admission_budget
          ~retry_base:params.Params.busy_retry_base;
      exec_started = Request_id_table.create 4096;
      replica_threads =
        Array.init instances (fun i -> mk (Printf.sprintf "replica%d" i));
      replicas = [||];
      faults =
        {
          flood_targets = [];
          flood_size = 9_000;
          flood_rate = 0.0;
          no_propagate = false;
          drop_client_requests = false;
        };
      monitoring = Monitoring.create params;
      requests = Request_id_table.create 4096;
      executed = Replycache.create ~window:params.Params.reply_cache_window ();
      fp_requests = None;
      exec_counter = Bftmetrics.Throughput.create ();
      exec_count = 0;
      exec_digest = "genesis";
      blacklist = [];
      cpi = 0;
      suspicious = false;
      ic_vote_cpi = Array.make (Params.n params) (-1);
      ic_votes = Pbftcore.Voteset.create ~n:(Params.n params);
      ic_sent_for = -1;
      instance_changes = 0;
      last_change_at = Time.zero;
      master_instance = Params.master_instance;
      invalid_counts = Array.make (Params.n params) 0;
      latency_probe = None;
      started = false;
      rcc = None;
      m = register_node_metrics ~id ~instances;
    }
  in
  t.replicas <-
    Array.init instances (fun i -> make_replica t ~instance:i t.replica_threads.(i));
  (match params.Params.ordering with
   | Params.Redundant -> ()
   | Params.Concurrent ->
     let partitioner = Bftrcc.Partitioner.create ~instances in
     let sequencer =
       Bftrcc.Sequencer.create ~instances ~emit:(fun ~instance ~seq:_ b ->
           seq_emit t ~instance b)
     in
     t.rcc <-
       Some
         {
           partitioner;
           sequencer;
           degraded = Array.make instances false;
           degrade_target = Array.make instances 0;
           quiet_until = Time.zero;
           prop_buf = Array.make instances [];
           prop_len = Array.make instances 0;
           prop_timer = Array.make instances false;
         };
     (* Each replica proposes only its own partition (plus any degraded
        ones), and keeps its stream flowing with no-op heartbeats when
        its partition is idle, so the round-robin merge never waits on
        a healthy instance. The heartbeat is gated on the local merge
        backlog: an idle stream must not run ahead of a loaded one, or
        its own later real batches queue behind the accumulated no-ops
        and the light partition's latency grows without bound. *)
     Array.iteri
       (fun i r ->
         Pbftcore.Replica.set_batch_filter r
           (Some
              (fun (desc : request_desc) ->
                let owner =
                  Bftrcc.Partitioner.owner partitioner ~client:desc.id.client
                in
                owner = i
                ||
                match t.rcc with
                | Some rcc -> rcc.degraded.(owner)
                | None -> false));
         Pbftcore.Replica.set_noop_gate r
           (Some (fun () -> Bftrcc.Sequencer.backlog sequencer ~instance:i = 0));
         Pbftcore.Replica.set_noop_interval r params.Params.noop_interval)
       t.replicas;
     Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
       "bft_seq_pending_batches"
       ~help:"Committed batches queued behind the merge head-of-line"
       ~labels:[ ("node", string_of_int id) ]
       (fun () ->
         float_of_int
           (Bftrcc.Sequencer.stats sequencer).Bftrcc.Sequencer.pending);
     Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
       "bft_seq_stall_age_seconds"
       ~help:"Age of the merge sequencer's head-of-line stall (0 = none)"
       ~labels:[ ("node", string_of_int id) ]
       (fun () ->
         match Bftrcc.Sequencer.stall sequencer ~now:(Engine.now engine) with
         | Some (_, age) -> Time.to_sec_f age
         | None -> 0.0));
  (* Adaptive batching ({!Bftflow.Batcher}): each replica's flush asks
     a planner seeded with the static config point and probing the
     stage that actually backs up — the verification thread feeding
     the pipeline, plus the replica's own lane. *)
  if params.Params.adaptive_batching then begin
    let planner =
      Bftflow.Batcher.make ~batch_size:params.Params.batch_size
        ~batch_delay:params.Params.batch_delay ()
    in
    Array.iteri
      (fun i r ->
        let lane = t.replica_threads.(i) in
        Pbftcore.Replica.set_batch_tuner r
          (Some
             (fun () ->
               let backlog =
                 Time.max
                   (Resource.backlog t.verification)
                   (Resource.backlog lane)
               in
               let depth =
                 Resource.depth t.verification + Resource.depth lane
               in
               Bftflow.Batcher.plan planner ~backlog ~depth)))
      t.replicas
  end;
  if Bftflow.Admission.enabled t.admission then begin
    Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
      "bft_admission_inflight"
      ~help:"Admitted client requests currently in flight"
      ~labels:[ ("node", string_of_int id) ]
      (fun () -> float_of_int (Bftflow.Admission.inflight t.admission));
    Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
      "bft_admission_shed_total"
      ~help:"Client requests answered BUSY by the admission gate"
      ~labels:[ ("node", string_of_int id) ]
      (fun () -> float_of_int (Bftflow.Admission.shed_total t.admission))
  end;
  (* Queue-depth gauges are callback-backed: read only at sample or
     export time, so the module threads pay nothing. *)
  List.iter
    (fun (name, r) ->
      Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
        "bft_thread_backlog"
        ~help:"Queued jobs on a node module thread"
        ~labels:[ ("node", string_of_int id); ("thread", name) ]
        (fun () -> float_of_int (Resource.backlog r));
      Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
        "bft_thread_depth"
        ~help:"Jobs waiting in a node module thread's queue"
        ~labels:[ ("node", string_of_int id); ("thread", name) ]
        (fun () -> float_of_int (Resource.depth r)))
    ([
       ("verification", t.verification);
       ("propagation", t.propagation);
       ("dispatch", t.dispatch);
       ("execution", t.execution);
     ]
    @ Array.to_list
        (Array.mapi
           (fun i r -> (Printf.sprintf "exec%d" i, r))
           t.execution_shards)
    @ Array.to_list
        (Array.mapi
           (fun i r -> (Printf.sprintf "replica%d" i, r))
           t.replica_threads));
  (* Capacity probes ({!Bftcap.Footprint}) over every O(clients) /
     O(history) table this node owns. Entries closures are O(1); deep
     byte measurement only ever happens at snapshot time. *)
  (let owner = Printf.sprintf "node-%d" id in
   t.fp_requests <-
     Some
       (Bftcap.Footprint.register ~owner ~name:"node.requests"
          ~entries:(fun () -> Request_id_table.length t.requests)
          ~root:(fun () -> Some (Obj.repr t.requests))
          ());
   ignore
     (Bftcap.Footprint.register ~owner ~name:"node.reply_cache"
        ~entries:(fun () -> Replycache.clients t.executed)
        ~root:(fun () -> Some (Obj.repr t.executed))
        ());
   ignore
     (Bftcap.Footprint.register ~owner ~name:"node.admission_held"
        ~entries:(fun () -> Request_id_table.length t.admission_held)
        ~root:(fun () -> Some (Obj.repr t.admission_held))
        ());
   ignore
     (Bftcap.Footprint.register ~owner ~name:"node.exec_started"
        ~entries:(fun () -> Request_id_table.length t.exec_started)
        ~root:(fun () -> Some (Obj.repr t.exec_started))
        ());
   Monitoring.register_probes t.monitoring ~owner;
   Array.iteri
     (fun i r ->
       Pbftcore.Replica.register_probes r
         ~owner:(Printf.sprintf "%s/i%d" owner i))
     t.replicas);
  Network.register_node net id (fun d -> on_delivery t d);
  t

let set_latency_probe t probe = t.latency_probe <- Some probe

let start t =
  if not t.started then begin
    t.started <- true;
    arm_monitoring t;
    start_flooding t
  end

(* Canonical digest input for the model checker's visited-state set.
   Everything that constrains which protocol actions are still possible
   is rendered in a fixed order; virtual-time values (first_seen,
   dispatch_time, last_change_at), spans and metric handles are
   deliberately left out so that states reached by commuted independent
   deliveries compare equal. *)
let mc_fingerprint t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let hex_short s =
    if s = "" then "-"
    else
      let h = Sha256.to_hex s in
      if String.length h > 12 then String.sub h 0 12 else h
  in
  add "n%d cpi=%d mi=%d susp=%b sent=%d chg=%d;" t.id t.cpi t.master_instance
    t.suspicious t.ic_sent_for t.instance_changes;
  add "icv=%s #%d;"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.ic_vote_cpi)))
    (Pbftcore.Voteset.count t.ic_votes);
  add "exec=%d/%s;" t.exec_count (hex_short t.exec_digest);
  add "bl=%s;"
    (String.concat "," (List.map string_of_int (List.sort compare t.blacklist)));
  add "inv=%s;"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.invalid_counts)));
  (match t.rcc with
   | Some rcc ->
     let st = Bftrcc.Sequencer.stats rcc.sequencer in
     add "rcc{m=%d r=%d p=%d g=%d deg=%s};" st.Bftrcc.Sequencer.merged
       st.Bftrcc.Sequencer.rounds st.Bftrcc.Sequencer.pending
       st.Bftrcc.Sequencer.gaps
       (String.concat ""
          (Array.to_list
             (Array.map (fun b -> if b then "1" else "0") rcc.degraded)))
   | None -> ());
  Request_id_table.fold (fun id rs acc -> (id, rs) :: acc) t.requests []
  |> List.sort (fun (a, _) (b, _) -> compare_request_id a b)
  |> List.iter (fun (id, rs) ->
         add "r%d/%d{s=%s p=%b v=%b%b d=%b q=%b};" id.client id.rid
           (String.concat ","
              (List.map string_of_int (Pbftcore.Voteset.to_list rs.senders)))
           rs.propagated rs.sig_checked rs.sig_inflight rs.dispatched
           (rs.req <> None));
  Replycache.fold_ids
    (fun ~client ~rid acc -> { client; rid } :: acc)
    t.executed []
  |> List.sort compare_request_id
  |> List.iter (fun id -> add "x%d/%d;" id.client id.rid);
  Array.iteri
    (fun i r -> add "I%d[%s]" i (Pbftcore.Replica.fingerprint r))
    t.replicas;
  Buffer.contents buf
