open Dessim
open Bftcrypto
open Bftnet
open Bftapp
open Pbftcore.Types
module Spans = Bftspan.Tracer

type faults = {
  mutable flood_targets : int list;
  mutable flood_size : int;
  mutable flood_rate : float;
  mutable no_propagate : bool;
  mutable drop_client_requests : bool;
}

(* Book-keeping for one request on its way through the node. *)
type request_state = {
  first_seen : Time.t;  (* when this node first learned of the request *)
  mutable req : Messages.request option;  (* full request, once known *)
  senders : Pbftcore.Voteset.t;  (* distinct PROPAGATE senders (incl. self) *)
  mutable propagated : bool;  (* we sent our own PROPAGATE *)
  mutable sig_checked : bool;
  mutable sig_inflight : bool;  (* a verification job is pending *)
  mutable dispatched : bool;
  mutable dispatch_time : Time.t;
  mutable span : int;  (* latest span of this request on this node; -1 untraced *)
}

(* Metric handles, registered once per node; hot paths only mutate
   them behind the [Registry.active] gate. *)
type node_metrics = {
  nm_received : Bftmetrics.Registry.Counter.t;
  nm_dispatched : Bftmetrics.Registry.Counter.t;
  nm_executed : Bftmetrics.Registry.Counter.t;
  nm_instance_changes : Bftmetrics.Registry.Counter.t;
  nm_dispatch_latency : Bftmetrics.Hist.t;  (* first seen -> dispatched *)
  nm_ordering_latency : Bftmetrics.Hist.t array;  (* dispatch -> ordered *)
  nm_execution_latency : Bftmetrics.Hist.t;  (* dispatch -> executed *)
  nm_master_rate : Bftmetrics.Registry.Gauge.t;
  nm_backup_rate : Bftmetrics.Registry.Gauge.t;
  nm_ratio : Bftmetrics.Registry.Gauge.t;
  nm_delta : Bftmetrics.Registry.Gauge.t;
}

let register_node_metrics ~id ~instances =
  let module Registry = Bftmetrics.Registry in
  let reg = Registry.default in
  let node = string_of_int id in
  let counter name help =
    Registry.counter reg name ~help ~labels:[ ("node", node) ]
  in
  let gauge name help =
    Registry.gauge reg name ~help ~labels:[ ("node", node) ]
  in
  {
    nm_received = counter "bft_requests_received_total"
        "Fresh client requests entering verification";
    nm_dispatched = counter "bft_requests_dispatched_total"
        "Requests handed to the local replicas";
    nm_executed = counter "bft_requests_executed_total"
        "Requests executed and replied to";
    nm_instance_changes = counter "bft_instance_changes_total"
        "Protocol instance changes performed";
    nm_dispatch_latency =
      Registry.histogram reg "bft_request_dispatch_latency_seconds"
        ~help:"First sight of a request to replica dispatch"
        ~labels:[ ("node", node) ];
    nm_ordering_latency =
      Array.init instances (fun i ->
          Registry.histogram reg "bft_ordering_latency_seconds"
            ~help:"Replica dispatch to total-order delivery"
            ~labels:[ ("node", node); ("instance", string_of_int i) ]);
    nm_execution_latency =
      Registry.histogram reg "bft_execution_latency_seconds"
        ~help:"Replica dispatch to execution completion"
        ~labels:[ ("node", node) ];
    nm_master_rate = gauge "bft_monitor_master_rate"
        "Monitoring: averaged master-instance throughput (req/s)";
    nm_backup_rate = gauge "bft_monitor_backup_rate"
        "Monitoring: averaged mean backup-instance throughput (req/s)";
    nm_ratio = gauge "bft_monitor_ratio"
        "Monitoring: master/backup throughput ratio the delta test checks";
    nm_delta = gauge "bft_monitor_delta_threshold"
        "Monitoring: configured delta acceptance threshold";
  }

type t = {
  engine : Engine.t;
  clock : Clock.t;  (* local periodic timers; skewable by the chaos engine *)
  net : Messages.t Network.t;
  params : Params.t;
  id : int;
  service : Service.t;
  (* Module threads (Figure 6), each on its own core. *)
  verification : Resource.t;
  propagation : Resource.t;
  dispatch : Resource.t;
  execution : Resource.t;
  replica_threads : Resource.t array;
  mutable replicas : Pbftcore.Replica.t array;
  faults : faults;
  monitoring : Monitoring.t;
  requests : request_state Request_id_table.t;
  executed : string Request_id_table.t;  (* results, for re-replies *)
  exec_counter : Bftmetrics.Throughput.t;
  mutable exec_count : int;
  mutable exec_digest : string;
  mutable blacklist : int list;  (* clients *)
  (* Protocol instance change state. *)
  mutable cpi : int;
  mutable suspicious : bool;  (* current monitoring verdict *)
  (* Instance-change votes: per node the highest cpi it voted for, and
     the bitset of nodes whose vote covers the *current* cpi (rebuilt
     from the array on the rare cpi advance, O(1) on the quorum
     check). *)
  ic_vote_cpi : int array;
  ic_votes : Pbftcore.Voteset.t;
  mutable ic_sent_for : int;  (* last cpi we voted for; -1 = none *)
  mutable instance_changes : int;
  mutable last_change_at : Time.t;
  mutable master_instance : int;
  (* Flood defence: invalid messages per peer in the current window. *)
  invalid_counts : int array;
  mutable latency_probe : (instance:int -> client:int -> Time.t -> unit) option;
  mutable started : bool;
  m : node_metrics;
}

let id t = t.id
let params t = t.params
let faults t = t.faults
let replica t ~instance = t.replicas.(instance)
let monitoring t = t.monitoring
let master_instance t = t.master_instance
let executed_count t = t.exec_count
let executed_counter t = t.exec_counter
let execution_digest t = t.exec_digest
let cpi t = t.cpi
let instance_changes t = t.instance_changes
let blacklisted_clients t = t.blacklist
let is_blacklisted t ~client = List.mem client t.blacklist
let suspicious t = t.suspicious
let ic_vote_count t = Pbftcore.Voteset.count t.ic_votes

let ic_vote_cpi_of t ~node =
  if node >= 0 && node < Array.length t.ic_vote_cpi then t.ic_vote_cpi.(node)
  else -1

(* Chaos knobs: per-node clock drift and CPU slowdown. *)
let set_clock_factor t k = Clock.set_factor t.clock k

let set_cpu_factor t s =
  List.iter
    (fun r -> Resource.set_speed r s)
    ([ t.verification; t.propagation; t.dispatch; t.execution ]
    @ Array.to_list t.replica_threads)

let costs t = t.params.Params.costs
let n_nodes t = Params.n t.params
let instance_count t = Params.instances t.params

let self t = Principal.node t.id

(* Structured audit events; call sites guard with [Bus.active] so the
   disabled path allocates nothing. Node-level events that are not
   tied to one ordering instance use instance -1. *)
let audit t ?(instance = -1) kind =
  Bftaudit.Bus.emit
    { Bftaudit.Event.time = Engine.now t.engine; node = t.id; instance; kind }

(* ------------------------------------------------------------------ *)
(* Outbound helpers: charge the sending thread, then hit the network. *)
(* ------------------------------------------------------------------ *)

let msg_size t msg =
  Messages.wire_size msg ~n:(n_nodes t)
    ~order_full_requests:t.params.Params.order_full_requests

(* CPU byte-accounting per message class:
   - client REQUESTs are copied several times on the verification path
     (NIC buffer, verification pass, hand-off to propagation) — the
     dominant per-byte cost at large request sizes, matching the
     paper's crypto-bound Verification module;
   - PROPAGATEs are forwarded by reference once verified (the
     Propagation module enqueues, it does not re-serialize bodies);
   - with the order-full-requests ablation, PRE-PREPAREs carry whole
     bodies that get copied repeatedly (compare the Aardvark
     baseline); identifiers-only RBFT never pays this. *)
let cost_bytes t msg =
  let size = msg_size t msg in
  match msg with
  | Messages.Request { desc; _ } ->
    (* Headers and authenticators are read once; the operation body is
       what gets copied across buffers. *)
    size + (3 * desc.op_size)
  | Messages.Propagate _ -> (2 * size) / 5
  | Messages.Instance { msg = Pbftcore.Messages.Pre_prepare _; _ }
    when t.params.Params.order_full_requests ->
    6 * size
  | Messages.Instance _ | Messages.Instance_change _ | Messages.Reply _ -> size

let send_from ?(span = -1) ?span_tag t thread ~dst msg =
  let size = msg_size t msg in
  Resource.charge thread (Costmodel.send (costs t) ~bytes:(cost_bytes t msg));
  Network.send ~span ?span_tag t.net ~src:(self t) ~dst ~size msg

let broadcast_nodes_from ?(span = -1) t thread msg =
  let size = msg_size t msg in
  (* One MAC authenticator covers all destinations. *)
  Resource.charge thread
    (Costmodel.authenticator_gen (costs t) ~bytes:size ~count:(n_nodes t));
  for dst = 0 to n_nodes t - 1 do
    if dst <> t.id then begin
      Resource.charge thread (Costmodel.send (costs t) ~bytes:(cost_bytes t msg));
      Network.send ~span t.net ~src:(self t) ~dst:(Principal.node dst) ~size msg
    end
  done

(* ------------------------------------------------------------------ *)
(* Request tracking                                                   *)
(* ------------------------------------------------------------------ *)

let request_state t rid =
  match Request_id_table.find_opt t.requests rid with
  | Some state -> state
  | None ->
    let state =
      {
        first_seen = Engine.now t.engine;
        req = None;
        senders = Pbftcore.Voteset.create ~n:(n_nodes t);
        propagated = false;
        sig_checked = false;
        sig_inflight = false;
        dispatched = false;
        dispatch_time = Time.zero;
        span = -1;
      }
    in
    Request_id_table.add t.requests rid state;
    state

(* ------------------------------------------------------------------ *)
(* Dispatch: hand a request to the f+1 local replicas (step 2 end).   *)
(* ------------------------------------------------------------------ *)

let dispatch_request t ~span (req : Messages.request) =
  let state = request_state t req.desc.id in
  if not state.dispatched then begin
    state.dispatched <- true;
    state.dispatch_time <- Engine.now t.engine;
    if Bftmetrics.Registry.active () then begin
      Bftmetrics.Registry.Counter.inc t.m.nm_dispatched;
      Bftmetrics.Hist.add t.m.nm_dispatch_latency
        (Time.to_sec_f (Time.sub state.dispatch_time state.first_seen))
    end;
    if Bftaudit.Bus.active () then
      audit t
        (Bftaudit.Event.Request_dispatched
           { client = req.desc.id.client; rid = req.desc.id.rid });
    Array.iteri
      (fun i replica_thread ->
        let replica = t.replicas.(i) in
        let rspan =
          Spans.job ~parent:span ~tag:Bftspan.Tag.Dispatch ~node:t.id
            ~instance:i ~now:state.dispatch_time
        in
        Resource.submit ~span:rspan replica_thread ~cost:(Time.ns 200)
          (fun () -> Pbftcore.Replica.submit ~span:rspan replica req.desc))
      t.replica_threads
  end

(* ------------------------------------------------------------------ *)
(* Propagation module (step 2)                                        *)
(* ------------------------------------------------------------------ *)

(* Hand over to the replicas once the f+1 PROPAGATE guard holds and
   the signature is known-good. *)
let maybe_dispatch t (state : request_state) =
  match state.req with
  | Some r
    when state.sig_checked && (not state.dispatched)
         && Pbftcore.Voteset.count state.senders >= t.params.Params.f + 1 ->
    let dspan =
      Spans.job ~parent:state.span ~tag:Bftspan.Tag.Dispatch ~node:t.id
        ~instance:(-1) ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:dspan t.dispatch ~cost:(Time.ns 200) (fun () ->
        dispatch_request t ~span:dspan r)
  | Some _ | None -> ()

let note_sender t (state : request_state) sender req =
  (match (state.req, req) with
   | None, Some r -> state.req <- Some r
   | None, None | Some _, _ -> ());
  if Pbftcore.Voteset.add state.senders sender then maybe_dispatch t state

let propagate_request t (req : Messages.request) =
  let state = request_state t req.desc.id in
  if not state.propagated then begin
    state.propagated <- true;
    if not t.faults.no_propagate then begin
      if Bftaudit.Bus.active () then
        audit t
          (Bftaudit.Event.Request_propagated
             { client = req.desc.id.client; rid = req.desc.id.rid });
      broadcast_nodes_from ~span:state.span t t.propagation
        (Messages.Propagate { req; from = t.id; junk = false })
    end
  end;
  note_sender t state t.id (Some req)

(* ------------------------------------------------------------------ *)
(* Flood defence                                                      *)
(* ------------------------------------------------------------------ *)

let note_invalid_from t peer =
  if peer >= 0 && peer < n_nodes t then begin
    t.invalid_counts.(peer) <- t.invalid_counts.(peer) + 1;
    if t.invalid_counts.(peer) > t.params.Params.flood_threshold then begin
      t.invalid_counts.(peer) <- 0;
      if Bftaudit.Bus.active () then
        audit t
          (Bftaudit.Event.Nic_closed
             {
               peer;
               until =
                 Time.add (Engine.now t.engine) t.params.Params.flood_close_time;
             });
      Network.close_nic t.net ~node:t.id ~peer:(Principal.node peer)
        ~for_:t.params.Params.flood_close_time
    end
  end

(* ------------------------------------------------------------------ *)
(* Verification module (step 1)                                       *)
(* ------------------------------------------------------------------ *)

let reply_to ?(span = -1) t (id : request_id) result =
  send_from ~span ~span_tag:Bftspan.Tag.Reply t t.execution
    ~dst:(Principal.client id.client)
    (Messages.Reply { id; result; node = t.id })

(* Schedule the (single) signature verification for a request on the
   verification thread, then resume on the propagation thread. Runs at
   most once per request: concurrent callers find [sig_inflight]. *)
let verify_signature_once t (req : Messages.request) =
  let state = request_state t req.desc.id in
  if (not state.sig_checked) && not state.sig_inflight then begin
    state.sig_inflight <- true;
    let vspan =
      Spans.job ~parent:state.span ~tag:Bftspan.Tag.Crypto_verify ~node:t.id
        ~instance:(-1) ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:vspan t.verification
      ~cost:(Costmodel.sig_verify (costs t) ~bytes:req.desc.op_size)
      (fun () ->
        state.sig_inflight <- false;
        if req.sig_valid then begin
          state.sig_checked <- true;
          if vspan >= 0 then state.span <- vspan;
          let pspan =
            Spans.job ~parent:state.span ~tag:Bftspan.Tag.Propagate ~node:t.id
              ~instance:(-1) ~now:(Engine.now t.engine)
          in
          Resource.submit ~span:pspan t.propagation ~cost:(Time.ns 200)
            (fun () ->
              if pspan >= 0 then state.span <- pspan;
              propagate_request t req;
              maybe_dispatch t state)
        end
        else if not (List.mem req.desc.id.client t.blacklist) then begin
          (* Invalid signature: blacklist the client (Sec. IV-B, step 1). *)
          if Bftaudit.Bus.active () then
            audit t (Bftaudit.Event.Blacklisted { client = req.desc.id.client });
          t.blacklist <- req.desc.id.client :: t.blacklist
        end)
  end

(* Runs on the verification thread (MAC cost already charged). *)
let handle_client_request t ~span (req : Messages.request) =
  if t.faults.drop_client_requests then ()
  else if List.mem req.desc.id.client t.blacklist then ()
  else if List.mem t.id req.mac_invalid_for then
    (* The authenticator entry for this node is broken: drop. *)
    ()
  else if Request_id_table.mem t.executed req.desc.id then begin
    (* Already executed: resend the reply (Section IV-B, step 1). *)
    match Request_id_table.find_opt t.executed req.desc.id with
    | Some result -> reply_to t req.desc.id result
    | None -> ()
  end
  else begin
    if Bftmetrics.Registry.active () then
      Bftmetrics.Registry.Counter.inc t.m.nm_received;
    if Bftaudit.Bus.active () then
      audit t
        (Bftaudit.Event.Request_received
           {
             client = req.desc.id.client;
             rid = req.desc.id.rid;
             size = req.desc.op_size;
           });
    let state = request_state t req.desc.id in
    if state.span < 0 && span >= 0 then state.span <- span;
    if state.sig_checked then
      Resource.submit t.propagation ~cost:(Time.ns 200) (fun () ->
          propagate_request t req)
    else verify_signature_once t req
  end

(* Runs on the propagation thread (MAC cost already charged). *)
let handle_propagate t ~span ~from (req : Messages.request) ~junk =
  if junk then note_invalid_from t from
  else begin
    let state = request_state t req.desc.id in
    if state.span < 0 && span >= 0 then state.span <- span;
    note_sender t state from (Some req);
    if state.sig_checked then begin
      if not state.propagated then propagate_request t req
    end
    else verify_signature_once t req
  end

(* ------------------------------------------------------------------ *)
(* Protocol instance change (Section IV-D)                            *)
(* ------------------------------------------------------------------ *)

(* Re-derive the current-cpi voter bitset from the per-node maxima;
   only runs when [t.cpi] advances. *)
let rebuild_ic_votes t =
  Pbftcore.Voteset.clear t.ic_votes;
  Array.iteri
    (fun node c -> if c >= t.cpi then ignore (Pbftcore.Voteset.add t.ic_votes node))
    t.ic_vote_cpi

let note_ic_vote t ~from ~cpi =
  if from >= 0 && from < n_nodes t && cpi > t.ic_vote_cpi.(from) then begin
    t.ic_vote_cpi.(from) <- cpi;
    if cpi >= t.cpi then ignore (Pbftcore.Voteset.add t.ic_votes from)
  end

let perform_instance_change t target_cpi =
  if Bftmetrics.Registry.active () then
    Bftmetrics.Registry.Counter.inc t.m.nm_instance_changes;
  if Bftaudit.Bus.active () then
    audit t ~instance:t.master_instance
      (Bftaudit.Event.Instance_changed { cpi = target_cpi; recovery = false });
  t.cpi <- target_cpi + 1;
  t.instance_changes <- t.instance_changes + 1;
  t.last_change_at <- Engine.now t.engine;
  t.suspicious <- false;
  rebuild_ic_votes t;
  match t.params.Params.recovery with
  | Params.Change_primaries ->
    Array.iter (fun r -> Pbftcore.Replica.force_view_change r) t.replicas
  | Params.Switch_master ->
    t.master_instance <- (t.master_instance + 1) mod instance_count t;
    Monitoring.set_master t.monitoring t.master_instance

(* The correct quorum is 2f+1; [ic_quorum] is the mutation knob the
   model checker uses to plant a detectable protocol bug. *)
let ic_quorum t =
  match t.params.Params.ic_quorum with
  | Some q -> q
  | None -> (2 * t.params.Params.f) + 1

let check_ic_quorum t =
  if Pbftcore.Voteset.count t.ic_votes >= ic_quorum t then
    perform_instance_change t t.cpi

let send_instance_change t =
  if t.ic_sent_for < t.cpi then begin
    t.ic_sent_for <- t.cpi;
    note_ic_vote t ~from:t.id ~cpi:t.cpi;
    if Bftaudit.Bus.active () then
      audit t ~instance:t.master_instance
        (Bftaudit.Event.Instance_change_vote { cpi = t.cpi });
    broadcast_nodes_from t t.dispatch
      (Messages.Instance_change { cpi = t.cpi; node = t.id });
    check_ic_quorum t
  end

let handle_instance_change t ~from ~cpi =
  if cpi >= t.cpi then begin
    note_ic_vote t ~from ~cpi;
    (* Vote along only if this node also observes the problem. *)
    if t.suspicious then send_instance_change t;
    check_ic_quorum t
  end

(* ------------------------------------------------------------------ *)
(* Ordered batches coming back from the replicas                      *)
(* ------------------------------------------------------------------ *)

let execute_request t ~span (desc : request_desc) =
  if not (Request_id_table.mem t.executed desc.id) then begin
    let cost = Time.max t.params.Params.exec_cost (t.service.Service.exec_cost desc.op) in
    let espan =
      Spans.job ~parent:span ~tag:Bftspan.Tag.Execution ~node:t.id
        ~instance:t.master_instance ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:espan t.execution ~cost (fun () ->
        if not (Request_id_table.mem t.executed desc.id) then begin
          let result = t.service.Service.execute desc.op in
          Request_id_table.replace t.executed desc.id result;
          t.exec_count <- t.exec_count + 1;
          if Bftaudit.Bus.active () then
            audit t ~instance:t.master_instance
              (Bftaudit.Event.Executed
                 {
                   client = desc.id.client;
                   rid = desc.id.rid;
                   digest = desc.digest;
                 });
          Bftmetrics.Throughput.record t.exec_counter ~now:(Engine.now t.engine);
          if Bftmetrics.Registry.active () then begin
            Bftmetrics.Registry.Counter.inc t.m.nm_executed;
            match Request_id_table.find_opt t.requests desc.id with
            | Some state when state.dispatched ->
              Bftmetrics.Hist.add t.m.nm_execution_latency
                (Time.to_sec_f
                   (Time.sub (Engine.now t.engine) state.dispatch_time))
            | Some _ | None -> ()
          end;
          t.exec_digest <-
            Sha256.digest_string (t.exec_digest ^ desc.digest);
          Resource.charge t.execution
            (Costmodel.mac_gen (costs t) ~bytes:(String.length result + 16));
          reply_to ~span:espan t desc.id result
        end)
  end

let on_ordered t ~instance descs =
  (* Runs on the dispatch & monitoring thread. *)
  Monitoring.note_ordered t.monitoring ~instance ~count:(List.length descs);
  let now = Engine.now t.engine in
  let is_master = instance = t.master_instance in
  List.iter
    (fun (desc : request_desc) ->
      (* Collect (and clear) the ordering-chain span recorded by this
         instance's replica; every instance must collect its own so the
         table drains, but only the master's parents execution. *)
      let ospan =
        if Spans.active () then
          Pbftcore.Replica.take_span t.replicas.(instance) ~id:desc.id
        else -1
      in
      (match Request_id_table.find_opt t.requests desc.id with
       | Some state when state.dispatched ->
         let latency = Time.sub now state.dispatch_time in
         Monitoring.note_latency t.monitoring ~instance ~client:desc.id.client
           latency;
         if Bftmetrics.Registry.active () then
           Bftmetrics.Hist.add
             t.m.nm_ordering_latency.(instance)
             (Time.to_sec_f latency);
         (match t.latency_probe with
          | Some probe -> probe ~instance ~client:desc.id.client latency
          | None -> ());
         (* Requests dispatched before the last instance change were
            held by the previous primary; their latency says nothing
            about the current one. *)
         if is_master && state.dispatch_time >= t.last_change_at then begin
           let lambda = Monitoring.lambda_violation t.monitoring ~latency in
           let omega =
             Monitoring.omega_violation t.monitoring ~client:desc.id.client
           in
           if lambda || omega then begin
             if Bftaudit.Bus.active () then begin
               if lambda then
                 audit t ~instance
                   (Bftaudit.Event.Lambda_exceeded
                      { client = desc.id.client; latency });
               if omega then
                 audit t ~instance
                   (Bftaudit.Event.Omega_exceeded { client = desc.id.client })
             end;
             t.suspicious <- true;
             send_instance_change t
           end
         end
       | Some _ | None -> ());
      if is_master then execute_request t ~span:ospan desc)
    descs

(* ------------------------------------------------------------------ *)
(* Replica hosting                                                    *)
(* ------------------------------------------------------------------ *)

let make_replica t ~instance thread =
  let cfg =
    {
      Pbftcore.Replica.n = n_nodes t;
      f = t.params.Params.f;
      replica_id = t.id;
      instance;
      primary_of_view = (fun view -> Params.primary_of t.params ~instance ~view);
      batch_size = t.params.Params.batch_size;
      batch_delay = t.params.Params.batch_delay;
      checkpoint_interval = t.params.Params.checkpoint_interval;
      watermark_window = t.params.Params.watermark_window;
      order_full_requests = t.params.Params.order_full_requests;
      post_vc_quiet = t.params.Params.post_vc_quiet;
    }
  in
  let wrap msg = Messages.Instance { instance; msg } in
  let send dst msg = send_from t thread ~dst:(Principal.node dst) (wrap msg) in
  let broadcast msg = broadcast_nodes_from t thread (wrap msg) in
  let deliver _seq descs =
    Resource.submit t.dispatch ~cost:(Time.ns 500) (fun () ->
        on_ordered t ~instance descs)
  in
  Pbftcore.Replica.create ~clock:t.clock t.engine cfg
    { Pbftcore.Replica.send; broadcast; deliver; on_view_change = (fun _ -> ()) }

(* ------------------------------------------------------------------ *)
(* Inbound routing                                                    *)
(* ------------------------------------------------------------------ *)

let on_delivery t (d : Messages.t Network.delivery) =
  let recv_cost = Costmodel.recv (costs t) ~bytes:(cost_bytes t d.Network.payload) in
  let mac_cost = Costmodel.mac_verify (costs t) ~bytes:d.Network.size in
  let base = Time.add recv_cost mac_cost in
  if d.Network.corrupted then
    (* Chaos-corrupted on the wire: the authenticator check fails. The
       node still pays the verification cost, and invalid traffic from a
       peer node feeds the flood defence exactly like junk messages. *)
    Resource.submit t.verification ~cost:base (fun () ->
        match d.Network.src with
        | Principal.Node i -> note_invalid_from t i
        | Principal.Client _ -> ())
  else
  match d.Network.payload with
  | Messages.Request req ->
    let vspan =
      Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Crypto_verify
        ~node:t.id ~instance:(-1) ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:vspan t.verification ~cost:base (fun () ->
        handle_client_request t ~span:vspan req)
  | Messages.Propagate { req; from; junk } ->
    let pspan =
      Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Propagate ~node:t.id
        ~instance:(-1) ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:pspan t.propagation ~cost:base (fun () ->
        handle_propagate t ~span:pspan ~from req ~junk)
  | Messages.Instance { instance; msg } ->
    if instance < instance_count t then begin
      let thread = t.replica_threads.(instance) in
      let from =
        match d.Network.src with
        | Principal.Node i -> i
        | Principal.Client _ -> -1
      in
      if from >= 0 then
        Resource.submit thread ~cost:base (fun () ->
            Pbftcore.Replica.receive t.replicas.(instance) ~from msg)
    end
  | Messages.Instance_change { cpi; node } ->
    Resource.submit t.dispatch ~cost:base (fun () ->
        handle_instance_change t ~from:node ~cpi)
  | Messages.Reply _ -> (* nodes never receive replies *) ()

(* ------------------------------------------------------------------ *)
(* Monitoring loop and flooding processes                             *)
(* ------------------------------------------------------------------ *)

let monitoring_tick t =
  let verdict = Monitoring.tick t.monitoring ~now:(Engine.now t.engine) in
  Array.fill t.invalid_counts 0 (Array.length t.invalid_counts) 0;
  if Bftmetrics.Registry.active () then begin
    Bftmetrics.Registry.Gauge.set t.m.nm_master_rate
      verdict.Monitoring.master_rate;
    Bftmetrics.Registry.Gauge.set t.m.nm_backup_rate
      verdict.Monitoring.backup_rate;
    Bftmetrics.Registry.Gauge.set t.m.nm_ratio verdict.Monitoring.ratio;
    Bftmetrics.Registry.Gauge.set t.m.nm_delta t.params.Params.delta
  end;
  if Bftaudit.Bus.active () then
    audit t ~instance:t.master_instance
      (Bftaudit.Event.Monitor_verdict
         {
           master_rate = verdict.Monitoring.master_rate;
           backup_rate = verdict.Monitoring.backup_rate;
           suspicious = verdict.Monitoring.suspicious;
         });
  t.suspicious <- verdict.Monitoring.suspicious;
  if t.suspicious then begin
    (* Allow re-voting for the current cpi each period while the
       problem persists. *)
    if t.ic_sent_for >= t.cpi then t.ic_sent_for <- t.cpi - 1;
    send_instance_change t
  end

let rec arm_monitoring t =
  ignore
    (Clock.after t.clock t.params.Params.monitoring_period (fun () ->
         Resource.submit t.dispatch ~cost:(Time.us 2) (fun () -> monitoring_tick t);
         arm_monitoring t))

(* The flooding loop re-reads the fault configuration on every tick,
   so attacks can be switched on and off at any virtual time. *)
let start_flooding t =
  let junk_msg target =
    let desc = desc_of_op ~client:(-1) ~rid:target "junk" in
    Messages.Propagate
      {
        req =
          {
            desc = { desc with op_size = t.faults.flood_size };
            sig_valid = false;
            mac_invalid_for = [];
          };
        from = t.id;
        junk = true;
      }
  in
  let rec loop () =
    let rate = t.faults.flood_rate in
    let period =
      if rate > 0.0 then Time.of_sec_f (1.0 /. rate) else Time.ms 10
    in
    ignore
      (Clock.after t.clock period (fun () ->
           if t.faults.flood_rate > 0.0 then
             List.iter
               (fun target ->
                 let msg = junk_msg target in
                 let size = msg_size t msg in
                 Network.send t.net ~src:(self t) ~dst:(Principal.node target)
                   ~size msg)
               t.faults.flood_targets;
           loop ()))
  in
  loop ()

let create engine net params ~id ~service =
  let mk name = Resource.create engine ~name:(Printf.sprintf "n%d.%s" id name) in
  let instances = Params.instances params in
  let t =
    {
      engine;
      clock = Clock.create engine;
      net;
      params;
      id;
      service;
      verification = mk "verification";
      propagation = mk "propagation";
      dispatch = mk "dispatch";
      execution = mk "execution";
      replica_threads =
        Array.init instances (fun i -> mk (Printf.sprintf "replica%d" i));
      replicas = [||];
      faults =
        {
          flood_targets = [];
          flood_size = 9_000;
          flood_rate = 0.0;
          no_propagate = false;
          drop_client_requests = false;
        };
      monitoring = Monitoring.create params;
      requests = Request_id_table.create 4096;
      executed = Request_id_table.create 4096;
      exec_counter = Bftmetrics.Throughput.create ();
      exec_count = 0;
      exec_digest = "genesis";
      blacklist = [];
      cpi = 0;
      suspicious = false;
      ic_vote_cpi = Array.make (Params.n params) (-1);
      ic_votes = Pbftcore.Voteset.create ~n:(Params.n params);
      ic_sent_for = -1;
      instance_changes = 0;
      last_change_at = Time.zero;
      master_instance = Params.master_instance;
      invalid_counts = Array.make (Params.n params) 0;
      latency_probe = None;
      started = false;
      m = register_node_metrics ~id ~instances;
    }
  in
  t.replicas <-
    Array.init instances (fun i -> make_replica t ~instance:i t.replica_threads.(i));
  (* Queue-depth gauges are callback-backed: read only at sample or
     export time, so the module threads pay nothing. *)
  List.iter
    (fun (name, r) ->
      Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
        "bft_thread_backlog"
        ~help:"Queued jobs on a node module thread"
        ~labels:[ ("node", string_of_int id); ("thread", name) ]
        (fun () -> float_of_int (Resource.backlog r)))
    ([
       ("verification", t.verification);
       ("propagation", t.propagation);
       ("dispatch", t.dispatch);
       ("execution", t.execution);
     ]
    @ Array.to_list
        (Array.mapi
           (fun i r -> (Printf.sprintf "replica%d" i, r))
           t.replica_threads));
  Network.register_node net id (fun d -> on_delivery t d);
  t

let set_latency_probe t probe = t.latency_probe <- Some probe

let start t =
  if not t.started then begin
    t.started <- true;
    arm_monitoring t;
    start_flooding t
  end

(* Canonical digest input for the model checker's visited-state set.
   Everything that constrains which protocol actions are still possible
   is rendered in a fixed order; virtual-time values (first_seen,
   dispatch_time, last_change_at), spans and metric handles are
   deliberately left out so that states reached by commuted independent
   deliveries compare equal. *)
let mc_fingerprint t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let hex_short s =
    if s = "" then "-"
    else
      let h = Sha256.to_hex s in
      if String.length h > 12 then String.sub h 0 12 else h
  in
  add "n%d cpi=%d mi=%d susp=%b sent=%d chg=%d;" t.id t.cpi t.master_instance
    t.suspicious t.ic_sent_for t.instance_changes;
  add "icv=%s #%d;"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.ic_vote_cpi)))
    (Pbftcore.Voteset.count t.ic_votes);
  add "exec=%d/%s;" t.exec_count (hex_short t.exec_digest);
  add "bl=%s;"
    (String.concat "," (List.map string_of_int (List.sort compare t.blacklist)));
  add "inv=%s;"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.invalid_counts)));
  Request_id_table.fold (fun id rs acc -> (id, rs) :: acc) t.requests []
  |> List.sort (fun (a, _) (b, _) -> compare_request_id a b)
  |> List.iter (fun (id, rs) ->
         add "r%d/%d{s=%s p=%b v=%b%b d=%b q=%b};" id.client id.rid
           (String.concat ","
              (List.map string_of_int (Pbftcore.Voteset.to_list rs.senders)))
           rs.propagated rs.sig_checked rs.sig_inflight rs.dispatched
           (rs.req <> None));
  Request_id_table.fold (fun id _ acc -> (id, ()) :: acc) t.executed []
  |> List.sort (fun (a, _) (b, _) -> compare_request_id a b)
  |> List.iter (fun (id, ()) -> add "x%d/%d;" id.client id.rid);
  Array.iteri
    (fun i r -> add "I%d[%s]" i (Pbftcore.Replica.fingerprint r))
    t.replicas;
  Buffer.contents buf
