(** An open-loop RBFT client.

    The paper targets open-loop systems (Section II): clients send
    requests at their own rate without waiting for replies. A client
    signs each request, MAC-authenticates it for every node, sends it
    to all nodes (step 1) and accepts a result once f+1 matching
    REPLYs arrive (step 6).

    Fault injection covers the client-side actions of the paper's
    attacks: invalid signatures, selectively broken MAC entries
    (worst-attack-1) and heavy requests (the Prime attack). *)

open Dessim

type t

type behaviour = {
  mutable sig_valid : bool;  (** produce valid signatures *)
  mutable mac_invalid_for : int list;
      (** nodes receiving a broken authenticator entry *)
  mutable heavy : bool;  (** send heavy (10x execution cost) requests *)
  mutable send_only_to : int list;
      (** restrict which nodes receive the request ([[]] = all) *)
  mutable make_op : (int -> string) option;
      (** custom operation builder (rid → op), e.g. encoded
          {!Bftapp.Kvstore} operations; [None] (the default) sends the
          null-service payload *)
}

val create :
  Engine.t ->
  Messages.t Bftnet.Network.t ->
  Params.t ->
  id:int ->
  ?payload_size:int ->
  unit ->
  t

val id : t -> int
val behaviour : t -> behaviour

val set_rate : t -> float -> unit
(** [set_rate t r] starts (or retunes) open-loop sending at [r]
    requests per second; [0.] stops the client. Cancels closed-loop
    mode. *)

val set_closed_loop : t -> outstanding:int -> unit
(** Switch to closed-loop operation: keep [outstanding] requests in
    flight, sending a new one as each completes. The paper scopes RBFT
    to open-loop systems (Section II) precisely because a closed-loop
    client is throttled by the master instance, so the backup
    instances can never observe a higher rate than a slow master —
    this mode exists to demonstrate that limitation (see the
    closed-loop ablation). *)

val send_one : t -> unit
(** Send a single request immediately (used by examples and tests). *)

val send_burst : t -> count:int -> unit
(** [send_burst t ~count] sends [count] requests back-to-back without
    arming any rate timer — the model checker's workload: a fixed,
    finite set of requests so the reachable state space is finite. *)

val sent : t -> int
val completed : t -> int
(** Requests for which f+1 matching replies arrived. *)

val busy_replies : t -> int
(** BUSY backpressure replies received (each counted once per sending
    node per attempt). *)

val retries : t -> int
(** Retries triggered by f+1 distinct BUSY replies: the request was
    re-sent under the same request id after a backed-off wait
    ({!Bftflow.Backoff}), never earlier than the servers' retry
    hints. *)

val pending_count : t -> int
(** Requests sent and not yet completed (the client's reply-collection
    table; capacity probes sum it across the population). *)

val latencies : t -> Bftmetrics.Hist.t
(** End-to-end latency distribution (seconds). *)

val completion_counter : t -> Bftmetrics.Throughput.t
