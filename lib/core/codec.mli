(** Binary wire codec for RBFT's node-level messages (Figure 5).

    Complements {!Pbftcore.Codec} for the per-instance traffic;
    REQUEST/PROPAGATE/REPLY and INSTANCE-CHANGE are node-level.
    Authentication material travels as placeholder bytes of the real
    size (a signature slot and a one-byte validity marker standing for
    the simulator's validity flags); the tests check the encoded
    length matches {!Messages.wire_size} up to the MAC authenticator
    the network frames add. *)

val encode : order_full_requests:bool -> Messages.t -> string
val decode : order_full_requests:bool -> string -> Messages.t option
