open Pbftcore.Types

type request = {
  desc : request_desc;
  sig_valid : bool;
  mac_invalid_for : int list;
}

type t =
  | Request of request
  | Propagate of { req : request; from : int; junk : bool }
  | Propagate_batch of { reqs : request list; owner : int; from : int }
      (** concurrent (bftrcc) mode: requests of one partition coalesced
          into a single PROPAGATE, amortising per-message handling and
          carrying one batch authenticator instead of one MAC vector
          per request (receivers authenticate the forwarded requests by
          their client signatures) *)
  | Instance of { instance : int; msg : Pbftcore.Messages.t }
  | Instance_change of { cpi : int; node : int }
  | Reply of { id : request_id; result : string; node : int }
  | Busy of { id : request_id; retry_after : Dessim.Time.t; node : int }

let header = 16

let request_wire_size r ~n =
  header + r.desc.op_size + Bftcrypto.Keys.signature_size
  + (n * Bftcrypto.Keys.mac_tag_size)

let wire_size msg ~n ~order_full_requests =
  match msg with
  | Request r -> request_wire_size r ~n
  | Propagate { req; _ } -> header + request_wire_size req ~n
  | Propagate_batch { reqs; _ } ->
    (* Per request: header + op + client signature. The client's
       per-node MAC vector is not forwarded (the signature
       authenticates the request); one MAC authenticator covers the
       whole batch. *)
    header
    + (n * Bftcrypto.Keys.mac_tag_size)
    + List.fold_left
        (fun acc r ->
          acc + header + r.desc.op_size + Bftcrypto.Keys.signature_size)
        0 reqs
  | Instance { msg; _ } ->
    header + Pbftcore.Messages.wire_size ~n ~order_full_requests msg
  | Instance_change _ -> header + 8 + (n * Bftcrypto.Keys.mac_tag_size)
  | Reply { result; _ } ->
    header + String.length result + Bftcrypto.Keys.mac_tag_size
  | Busy _ -> header + 8 + Bftcrypto.Keys.mac_tag_size

let type_tag = function
  | Request _ -> "request"
  | Propagate _ -> "propagate"
  | Propagate_batch _ -> "propagate-batch"
  | Instance { msg; _ } -> "instance." ^ Pbftcore.Messages.type_tag msg
  | Instance_change _ -> "instance-change"
  | Reply _ -> "reply"
  | Busy _ -> "busy"
