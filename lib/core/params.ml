open Dessim

type recovery = Change_primaries | Switch_master
type ordering = Redundant | Concurrent

let ordering_name = function
  | Redundant -> "redundant"
  | Concurrent -> "concurrent"

type t = {
  f : int;
  monitoring_period : Time.t;
  delta : float;
  lambda : Time.t;
  omega : Time.t;
  batch_size : int;
  batch_delay : Time.t;
  checkpoint_interval : int;
  watermark_window : int;
  order_full_requests : bool;
  flood_threshold : int;
  flood_close_time : Time.t;
  recovery : recovery;
  post_vc_quiet : Time.t;
  exec_cost : Time.t;
  costs : Bftcrypto.Costmodel.t;
  ic_quorum : int option;
  ordering : ordering;
  noop_interval : Time.t;
  propagate_batch : int;
  propagate_batch_delay : Time.t;
  stall_change : Time.t;
  admission_budget : int;
  busy_retry_base : Time.t;
  adaptive_batching : bool;
  exec_shards : int;
  reply_cache_window : int;
  request_gc_age : Time.t;
  monitoring_idle_prune : Time.t;
}

let default ~f =
  {
    f;
    monitoring_period = Time.ms 100;
    delta = 0.95;
    lambda = Time.zero;
    omega = Time.zero;
    batch_size = 64;
    batch_delay = Time.ms 1;
    checkpoint_interval = 128;
    watermark_window = 1024;
    order_full_requests = false;
    flood_threshold = 64;
    flood_close_time = Time.ms 500;
    recovery = Change_primaries;
    post_vc_quiet = Time.zero;
    exec_cost = Time.us 1;
    costs = Bftcrypto.Costmodel.default;
    ic_quorum = None;
    ordering = Redundant;
    noop_interval = Time.ms 1;
    propagate_batch = 16;
    propagate_batch_delay = Time.us 300;
    stall_change = Time.ms 250;
    admission_budget = 0;
    busy_retry_base = Time.ms 10;
    adaptive_batching = false;
    exec_shards = 1;
    reply_cache_window = 4;
    request_gc_age = Time.zero;
    monitoring_idle_prune = Time.zero;
  }

let n t = (3 * t.f) + 1
let instances t = t.f + 1
let master_instance = 0

let primary_of t ~instance ~view = (view + instance) mod n t
