(** An RBFT node: one of the 3f+1 physical machines.

    Mirrors the architecture of the paper's Figure 6. Each node runs
    four module threads — Verification, Propagation, Dispatch &
    Monitoring, Execution — plus one replica process per protocol
    instance, each pinned to its own core (modelled as a
    {!Dessim.Resource.t}). The node owns one NIC per peer node and one
    client-facing NIC (provided by {!Bftnet.Network}).

    Responsibilities, matching Section IV-B:
    + verify client REQUESTs (MAC, then signature; invalid signatures
      blacklist the client),
    + PROPAGATE verified requests to all nodes and collect f+1 copies
      before handing requests to the local replicas,
    + host the f+1 protocol-instance replicas,
    + monitor per-instance throughput and latency and run the
      protocol-instance-change protocol of Section IV-D,
    + execute master-ordered requests and REPLY to clients,
    + defend against floods by closing the NIC of a peer that sends
      too many invalid messages. *)

open Dessim
open Bftapp

type t

val create :
  Engine.t -> Messages.t Bftnet.Network.t -> Params.t -> id:int -> service:Service.t -> t
(** Registers the node's handler on the network. Call {!start} to arm
    the monitoring timer (and the flooding processes of faulty
    nodes). *)

val start : t -> unit

val id : t -> int
val params : t -> Params.t

(** {1 Fault injection}

    Scripted Byzantine behaviours. All default to benign; attack
    scenarios mutate the returned record and the per-replica
    adversaries (via {!replica} and {!Pbftcore.Replica.adversary}). *)

type faults = {
  mutable flood_targets : int list;
      (** peer nodes to flood with junk PROPAGATEs of maximal size *)
  mutable flood_size : int;  (** bytes per junk message *)
  mutable flood_rate : float;  (** junk messages per second, per target *)
  mutable no_propagate : bool;
      (** do not take part in the PROPAGATE phase (worst-attack-2) *)
  mutable drop_client_requests : bool;
      (** ignore REQUESTs arriving straight from clients *)
}

val faults : t -> faults

val replica : t -> instance:int -> Pbftcore.Replica.t
(** The local replica of a protocol instance ([0] = master). *)

val monitoring : t -> Monitoring.t

(** {1 Observability} *)

val master_instance : t -> int
(** Which instance is currently master (always [0] under
    [Change_primaries]; moves under the [Switch_master] extension). *)

val executed_count : t -> int
(** Requests executed (master-ordered), the node-level throughput
    counter used by the harness. *)

val executed_counter : t -> Bftmetrics.Throughput.t
(** Windowed view of executions, for measurement. *)

val execution_digest : t -> string
(** Chained digest of the executed sequence; equal across correct
    nodes (safety check in tests). *)

val cpi : t -> int
(** Current protocol-instance-change counter (Section IV-D). *)

val instance_changes : t -> int
(** Completed protocol instance changes. *)

val suspicious : t -> bool
(** Latest monitoring verdict: whether this node currently suspects
    the master instance's primary. *)

val ic_vote_count : t -> int
(** Distinct INSTANCE-CHANGE votes covering the current [cpi]. *)

val ic_vote_cpi_of : t -> node:int -> int
(** Highest cpi node [node] has voted an instance change for, as seen
    by this node ([-1] = never voted; out-of-range ids also [-1]).
    Together with {!ic_vote_count} this lets tests pin the vote-set
    rebuild across cpi advances. *)

val admission_inflight : t -> int
(** Admitted client requests currently holding an admission-gate slot
    ([0] whenever the gate is disabled — the default). *)

val admission_shed : t -> int
(** Client requests this node has answered BUSY instead of admitting
    ({!Bftflow.Admission}); [0] with the gate disabled. *)

(** {1 Concurrent (bftrcc) ordering} *)

val ordering : t -> Params.ordering
(** The ordering mode this node runs ({!Params.Redundant} reproduces
    the paper; {!Params.Concurrent} partitions clients across the f+1
    instances and merges their committed streams deterministically). *)

val partition_owner : t -> client:int -> int
(** The instance that owns [client]'s partition; the master instance
    in redundant mode (where there is no partitioning). *)

val sequencer_stats : t -> Bftrcc.Sequencer.stats option
(** Merge-sequencer counters; [None] in redundant mode. *)

val degraded_partitions : t -> int list
(** Partitions currently on the degrade path (ordered redundantly by
    every primary after an instance change, until their new master
    delivers); always empty in redundant mode. *)

val mc_fingerprint : t -> string
(** Canonical, printable rendering of all schedule-relevant node state:
    instance-change machinery, execution log digest, per-request
    propagation/dispatch flags, blacklist, and every hosted replica's
    {!Pbftcore.Replica.fingerprint}. Deliberately excludes virtual-time
    values and metric state. The model checker hashes this per node
    into its visited-state set. *)

val set_latency_probe : t -> (instance:int -> client:int -> Dessim.Time.t -> unit) -> unit
(** Observe every per-request ordering latency the node measures
    (instance, client, dispatch-to-delivery time) — used to draw the
    paper's Figure 12. *)

val blacklisted_clients : t -> int list
val is_blacklisted : t -> client:int -> bool

(** {2 Chaos hooks} *)

val set_clock_factor : t -> float -> unit
(** Skew the node's local clock: all periodic timers (monitoring,
    flooding, batch timers of the hosted replicas) are stretched by the
    given factor from now on. 1.0 restores nominal timing. *)

val set_cpu_factor : t -> float -> unit
(** Run every module thread of the node (verification, propagation,
    dispatch, execution, per-instance replica threads) at the given
    speed multiple; costs scale by its inverse. 1.0 restores nominal
    speed. *)
