(** The attack scenarios of the paper's Section VI-C, scripted against
    a running {!Cluster}.

    In both "worst" attacks there are f faulty nodes and every client
    is faulty; they differ in whether the master primary is correct
    (worst-attack-1) or malicious (worst-attack-2). *)

open Dessim

val worst_attack_1 : Cluster.t -> unit
(** Section VI-C1. The master primary is correct (it runs on node 0 at
    view 0, so the faulty nodes are the last f nodes). Actions:
    (i) all (faulty) clients send requests whose MAC authenticator
    entry is broken for the master-primary node; (ii) the f faulty
    nodes flood that node with invalid PROPAGATEs of maximal size;
    (iii) the faulty nodes' master-instance replicas flood correct
    nodes (folded into the same junk streams) and (iv) stop taking
    part in the master instance; faulty nodes do not propagate. *)

val worst_attack_2 : Cluster.t -> unit
(** Section VI-C2. Node 0 (primary of the master instance at view 0)
    is faulty, along with nodes 1..f-1 when f > 1. Faulty nodes flood
    correct nodes below the NIC-closing threshold, skip the PROPAGATE
    phase, and their backup-instance replicas stay silent; the faulty
    master primary delays ordering down to the Δ envelope using the
    adaptive controller of {!install_delta_tracker}. *)

val install_delta_tracker :
  Cluster.t -> node:int -> instance:int -> margin:float -> unit
(** Periodically (every monitoring period) reads the faulty node's own
    monitoring data and paces its [instance] replica's PRE-PREPAREs so
    that the master/backup throughput ratio observed by correct nodes
    stays just above Δ — the paper's "limit value such that the ratio
    observed at the correct nodes is greater or equal than Δ". *)

val unfair_primary :
  Cluster.t -> node:int -> target_client:int -> after_requests:int -> hold:Time.t -> unit
(** Section VI-C3 (Figure 12): after the master instance has ordered
    [after_requests] requests, the (faulty) master primary on [node]
    starts holding back the target client's requests by [hold] before
    proposing them. *)
