(** The monitoring mechanism of Section IV-C.

    Each node counts, per protocol instance, the requests ordered by
    its local replica ([nbreqs]) and periodically turns the counters
    into throughputs. If the ratio between the master instance's
    throughput and the average backup throughput drops below Δ, the
    primary of the master instance is suspected. The same module
    tracks per-request ordering latency for the Λ (absolute) and Ω
    (cross-instance difference per client) fairness checks. *)

open Dessim

type t

val create : ?history_cap:int -> Params.t -> t
(** [?history_cap] bounds how many past measurements {!tick} retains
    for {!history} (default 4096, ≈7 minutes of 100 ms windows); older
    measurements are discarded oldest-first. Values below 1 are clamped
    to 1. *)

val history_cap : t -> int
(** The measurement-history bound this monitor was created with. *)

val set_master : t -> int -> unit
(** Tell the monitoring which instance is currently master (only moves
    under the [Switch_master] recovery extension). *)

val note_ordered : t -> instance:int -> count:int -> unit
(** The local replica of [instance] ordered [count] requests. *)

val note_offered : t -> instance:int -> count:int -> unit
(** Concurrent (bftrcc) ordering: [count] requests whose partition
    [instance] owns were offered for ordering (counted at dispatch).
    {!tick} then normalizes each instance's observed rate by its share
    of the offered load before applying the Δ test, keeping the
    master-demotion check meaningful when partitions legitimately
    carry different loads. Never calling this (redundant mode) leaves
    the verdict exactly as the paper specifies it. *)

val note_latency : t -> instance:int -> client:int -> Time.t -> unit
(** One request from [client] was ordered by [instance] with the given
    ordering latency (dispatch → delivery); feeds the per-client
    averages used by the Ω check. *)

type verdict = {
  rates : float array;  (** per-instance raw throughput over the window, req/s *)
  master_rate : float;
  backup_rate : float;  (** average of the backup instances *)
  ratio : float;
      (** master/backup throughput ratio the Δ test compares against
          the threshold; NaN while the backups are idle *)
  suspicious : bool;
      (** true when the Δ test fires: the master primary looks slow *)
  weights : float array;
      (** per-instance share of the offered load used for the
          normalization; uniform when no offered traffic was recorded
          (redundant mode), in which case the normalization is the
          identity *)
}

val tick : t -> now:Time.t -> verdict
(** Close the current window, compute throughputs, reset the counters
    and remember the measurement (for {!history}). The Δ test is only
    applied when the backups show meaningful traffic (idle systems
    are never suspicious). *)

val lambda_violation : t -> latency:Time.t -> bool
(** Λ check for a request ordered by the master instance. *)

val omega_violation : t -> client:int -> bool
(** Ω check: the client's average latency on the master exceeds its
    average on the backups by more than Ω. *)

val client_avg_latency : t -> instance:int -> client:int -> Time.t option
(** Current average ordering latency of [client] on [instance]. *)

val history : t -> (Time.t * float array) list
(** Measurements recorded by {!tick}, oldest first — what Figures 9
    and 11 plot. At most [history_cap] entries are kept; once the cap
    is reached the oldest measurement is dropped for each new one. *)

val latest : t -> (Time.t * float array) option
(** The most recent measurement, if any. *)

val client_count : t -> int
(** Clients currently holding per-instance latency EMAs. With
    {!Params.monitoring_idle_prune} > 0, {!tick} drops clients idle
    past the threshold, bounding this under client churn. *)

val register_probes : t -> owner:string -> unit
(** Register {!Bftcap.Footprint} probes over the monitor's
    O(clients) latency table and its measurement-history ring. *)
