(* Compact per-client reply cache. See replycache.mli. *)

type entry = {
  (* Executed rids as sorted, disjoint, non-adjacent [lo, hi] ranges.
     In-order execution keeps this at one range per client; transient
     disorder (degraded-mode fallback streams, view-change replay
     delivering committed batches out of client order) opens extra
     ranges that merge away as the gaps fill. Exact under ANY
     execution order, unlike a bounded ring of recent rids. *)
  mutable ranges : (int * int) list;
  (* Ring of the last [window] (rid, result) pairs for re-replies;
     -1 = empty slot. *)
  rids : int array;
  results : string array;
  mutable next : int;
}

(* Client ids are dense (clients are numbered 0..population-1), so the
   primary store is a doubling array. A spoofed id past [dense_limit]
   must not force a gigantic allocation: those few fall back to a
   hashtable. *)
let dense_limit = 1 lsl 20

type t = {
  window : int;
  mutable slots : entry option array;
  overflow : (int, entry) Hashtbl.t;
  mutable clients : int;
}

let create ?(window = 4) () =
  {
    window = max 1 window;
    slots = [||];
    overflow = Hashtbl.create 8;
    clients = 0;
  }

let fresh_entry t =
  {
    ranges = [];
    rids = Array.make t.window (-1);
    results = Array.make t.window "";
    next = 0;
  }

let lookup t client =
  if client >= 0 && client < dense_limit then
    if client < Array.length t.slots then t.slots.(client) else None
  else Hashtbl.find_opt t.overflow client

let ensure t client =
  match lookup t client with
  | Some e -> e
  | None ->
    let e = fresh_entry t in
    t.clients <- t.clients + 1;
    if client >= 0 && client < dense_limit then begin
      if client >= Array.length t.slots then begin
        let cap = max 16 (max (client + 1) (2 * Array.length t.slots)) in
        let a = Array.make cap None in
        Array.blit t.slots 0 a 0 (Array.length t.slots);
        t.slots <- a
      end;
      t.slots.(client) <- Some e
    end
    else Hashtbl.replace t.overflow client e;
    e

(* Insert [rid] into the sorted range list, coalescing with adjacent
   or overlapping ranges. *)
let rec range_insert rid = function
  | [] -> [ (rid, rid) ]
  | (lo, hi) :: rest when rid < lo - 1 -> (rid, rid) :: (lo, hi) :: rest
  | (lo, hi) :: rest when rid = lo - 1 -> (rid, hi) :: rest
  | (lo, hi) :: rest when rid <= hi -> (lo, hi) :: rest
  | (lo, hi) :: ((lo2, hi2) :: rest2 as rest) ->
    if rid = hi + 1 then
      if lo2 = rid + 1 then (lo, hi2) :: rest2 else (lo, rid) :: rest
    else (lo, hi) :: range_insert rid rest
  | [ (lo, hi) ] ->
    if rid = hi + 1 then [ (lo, rid) ] else [ (lo, hi); (rid, rid) ]

let mark t ~client ~rid ~result =
  let e = ensure t client in
  e.ranges <- range_insert rid e.ranges;
  e.rids.(e.next) <- rid;
  e.results.(e.next) <- result;
  e.next <- (e.next + 1) mod t.window

let seen t ~client ~rid =
  match lookup t client with
  | None -> false
  | Some e -> List.exists (fun (lo, hi) -> rid >= lo && rid <= hi) e.ranges

let find t ~client ~rid =
  match lookup t client with
  | None -> None
  | Some e ->
    let res = ref None in
    Array.iteri (fun i r -> if r = rid then res := Some e.results.(i)) e.rids;
    !res

let clients t = t.clients
let window t = t.window

let ranges t ~client =
  match lookup t client with None -> [] | Some e -> e.ranges

let fold_ids f t acc =
  let fold_entry client e acc =
    List.fold_left
      (fun acc (lo, hi) ->
        let acc = ref acc in
        for rid = lo to hi do
          acc := f ~client ~rid !acc
        done;
        !acc)
      acc e.ranges
  in
  let acc = ref acc in
  Array.iteri
    (fun client -> function
      | Some e -> acc := fold_entry client e !acc
      | None -> ())
    t.slots;
  Hashtbl.iter (fun client e -> acc := fold_entry client e !acc) t.overflow;
  !acc
