open Dessim

let for_all_clients cluster f = Array.iter f (Cluster.clients cluster)

let flood_rate_for cluster ~aggressive =
  (* The NIC-closing threshold admits [flood_threshold] invalid
     messages per monitoring period; a smart attacker floods just
     below it, a brute-force one well above. *)
  let params = Cluster.params cluster in
  let per_period = float_of_int params.Params.flood_threshold in
  let period = Time.to_sec_f params.Params.monitoring_period in
  if aggressive then 4.0 *. per_period /. period else 0.8 *. per_period /. period

let worst_attack_1 cluster =
  let params = Cluster.params cluster in
  let n = Params.n params and f = params.Params.f in
  let master_primary_node = Params.primary_of params ~instance:Params.master_instance ~view:0 in
  let faulty_nodes = List.init f (fun i -> n - 1 - i) in
  Bftaudit.Auditor.declare_faulty faulty_nodes;
  (* (i) clients: authenticator broken for the master-primary node. *)
  for_all_clients cluster (fun c ->
      (Client.behaviour c).Client.mac_invalid_for <- [ master_primary_node ]);
  List.iter
    (fun id ->
      let node = Cluster.node cluster id in
      let faults = Node.faults node in
      (* (ii)+(iii) flood the master-primary node with junk of maximal
         size; it will close the offending NICs. *)
      faults.Node.flood_targets <- [ master_primary_node ];
      faults.Node.flood_rate <- flood_rate_for cluster ~aggressive:true;
      (* (iv) the faulty master-instance replicas stop participating;
         backup replicas keep running at full speed. *)
      (Pbftcore.Replica.adversary (Node.replica node ~instance:Params.master_instance))
        .Pbftcore.Replica.silent <- true;
      faults.Node.no_propagate <- true)
    faulty_nodes

let install_delta_tracker cluster ~node ~instance ~margin =
  Bftaudit.Auditor.declare_faulty [ node ];
  let engine = Cluster.engine cluster in
  let params = Cluster.params cluster in
  let the_node = Cluster.node cluster node in
  let replica = Node.replica the_node ~instance in
  let cap = ref 0.0 in
  let prev_backup = ref 0.0 in
  (Pbftcore.Replica.adversary replica).Pbftcore.Replica.pp_rate_limit <-
    (fun () -> !cap);
  let rec loop () =
    ignore
      (Engine.after engine params.Params.monitoring_period (fun () ->
           (* The faulty node reads its own monitoring module — the
              same data correct nodes use for the Δ test. The cap is
              one window stale, so a smart attacker only throttles
              while the backup rate is stable: throttling against a
              rising rate would push the observed ratio under Δ and
              get it evicted. *)
           (match Monitoring.latest (Node.monitoring the_node) with
            | Some (_, rates) when Array.length rates > 1 ->
              let backups = Array.length rates - 1 in
              let sum = ref 0.0 in
              Array.iteri
                (fun i r -> if i <> Params.master_instance then sum := !sum +. r)
                rates;
              let backup_rate = !sum /. float_of_int backups in
              let stable =
                !prev_backup > 0.0
                && Float.abs (backup_rate -. !prev_backup) /. !prev_backup <= 0.05
              in
              prev_backup := backup_rate;
              let target = (params.Params.delta +. margin) *. backup_rate in
              cap := (if stable && target > 0.0 then target else 0.0)
            | Some _ | None -> ());
           loop ()))
  in
  loop ()

let worst_attack_2 cluster =
  let params = Cluster.params cluster in
  let f = params.Params.f in
  let n = Params.n params in
  (* The faulty nodes include the master primary's node (node 0 at
     view 0). *)
  let master_primary_node = Params.primary_of params ~instance:Params.master_instance ~view:0 in
  let faulty_nodes =
    master_primary_node :: List.init (f - 1) (fun i -> (master_primary_node + n - 1 - i) mod n)
  in
  Bftaudit.Auditor.declare_faulty faulty_nodes;
  List.iter
    (fun id ->
      let node = Cluster.node cluster id in
      let faults = Node.faults node in
      let correct =
        List.filter (fun j -> not (List.mem j faulty_nodes)) (List.init n (fun j -> j))
      in
      (* (ii) flood all correct nodes, but below the NIC-closing
         threshold: closing the faulty node's NIC would also cut off
         the master primary's ordering messages and end the attack. *)
      faults.Node.flood_targets <- correct;
      faults.Node.flood_rate <- flood_rate_for cluster ~aggressive:false;
      faults.Node.no_propagate <- true;
      (* (iii) backup-instance replicas on faulty nodes stay silent. *)
      for i = 0 to Params.instances params - 1 do
        if i <> Params.master_instance then
          (Pbftcore.Replica.adversary (Node.replica node ~instance:i))
            .Pbftcore.Replica.silent <- true
      done)
    faulty_nodes;
  (* The malicious master primary delays down to the Δ envelope. *)
  install_delta_tracker cluster ~node:master_primary_node
    ~instance:Params.master_instance ~margin:0.035

let unfair_primary cluster ~node ~target_client ~after_requests ~hold =
  Bftaudit.Auditor.declare_faulty [ node ];
  let the_node = Cluster.node cluster node in
  let replica = Node.replica the_node ~instance:Params.master_instance in
  (Pbftcore.Replica.adversary replica).Pbftcore.Replica.client_hold <-
    (fun id ->
      if
        id.Pbftcore.Types.client = target_client
        && Pbftcore.Replica.ordered_count replica >= after_requests
      then hold
      else Time.zero)
