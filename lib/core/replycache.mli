(** Compact per-client reply cache.

    Replaces the append-only [executed : string Request_id_table.t]
    — which grew one entry per request ever executed, O(total
    requests) — with a per-client record of (a) the set of executed
    rids stored as merged [lo, hi] ranges and (b) a small ring of the
    last [window] (rid, result) pairs for re-replies.

    The range set makes duplicate suppression {e exact under any
    execution order}: the merged execution stream is normally in
    per-client rid order (one range per client, O(clients) total),
    but degraded-mode fallback streams and view-change replay can
    deliver committed batches out of client order — transient gaps
    open extra ranges that coalesce away as they fill. Memory is
    O(clients × ranges), with ranges ≈ 1 in steady state.

    The rare non-dense client id (negative, or a Byzantine spoof far
    above the population) falls back to a side table so an adversary
    cannot force a huge array allocation. *)

type t

val create : ?window:int -> unit -> t
(** [window] is the per-client reply-ring size (default 4, min 1). *)

val mark : t -> client:int -> rid:int -> result:string -> unit
(** Record an executed request's result. *)

val seen : t -> client:int -> rid:int -> bool
(** Whether [rid] was already executed for [client]. Exact. *)

val find : t -> client:int -> rid:int -> string option
(** The cached result for a re-reply, if [rid] is still in the
    client's reply ring. A {!seen} rid whose result was evicted
    returns [None] — the client received its reply long ago (classic
    PBFT last-reply semantics). *)

val clients : t -> int
(** Clients holding at least one executed-rid record. *)

val window : t -> int

val ranges : t -> client:int -> (int * int) list
(** The client's executed rids as sorted disjoint ranges (tests and
    capacity probes; [[]] for an unknown client). *)

val fold_ids : (client:int -> rid:int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every executed (client, rid), in unspecified order (the
    model-checker fingerprint sorts; only meaningful at model-checking
    scale where the id sets are tiny). *)
