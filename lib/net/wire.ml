module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let u64 t v =
    u32 t v;
    u32 t (v lsr 32)

  let rec varint t v =
    assert (v >= 0);
    if v < 0x80 then u8 t v
    else begin
      u8 t (0x80 lor (v land 0x7F));
      varint t (v lsr 7)
    end

  let bytes t s = Buffer.add_string t s

  let string t s =
    varint t (String.length s);
    bytes t s

  let list t f xs =
    varint t (List.length xs);
    List.iter f xs

  let size t = Buffer.length t
  let contents t = Buffer.contents t
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Truncated

  let of_string data = { data; pos = 0 }

  let u8 t =
    if t.pos >= String.length t.data then raise Truncated;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    lo lor (u8 t lsl 8)

  let u32 t =
    let lo = u16 t in
    lo lor (u16 t lsl 16)

  let u64 t =
    let lo = u32 t in
    lo lor (u32 t lsl 32)

  let varint t =
    let rec go shift acc =
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  let bytes t n =
    if t.pos + n > String.length t.data then raise Truncated;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let string t =
    let n = varint t in
    bytes t n

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f t)

  let at_end t = t.pos = String.length t.data
end
