(** Binary wire format helpers.

    Protocols use {!Writer} to compute principled on-the-wire message
    sizes (and to serialize messages when needed, e.g. in tests that
    check roundtrips); {!Reader} decodes. Integers use little-endian
    fixed widths or LEB128 varints. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val varint : t -> int -> unit
  val bytes : t -> string -> unit
  (** Raw bytes, no length prefix. *)

  val string : t -> string -> unit
  (** Varint length prefix followed by the bytes. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Varint count followed by each element (serialized by the given
      callback, which should write through the same writer). *)

  val size : t -> int
  val contents : t -> string
end

module Reader : sig
  type t

  exception Truncated

  val of_string : string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val varint : t -> int
  val bytes : t -> int -> string
  val string : t -> string
  val list : t -> (t -> 'a) -> 'a list
  val at_end : t -> bool
end
