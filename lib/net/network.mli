(** The simulated cluster network.

    Reproduces the paper's testbed topology (Sections V and VI-A):
    [n] nodes interconnected by a non-blocking Gigabit switch, each
    node equipped with one dedicated NIC per other node plus one NIC
    shared by all client traffic (the Aardvark/RBFT NIC-separation
    design). Every NIC rate-limits traffic in both directions; a
    message experiences sender serialization, propagation latency
    (plus jitter and, under TCP, protocol overhead) and receiver
    serialization. Nodes may close the NIC facing a flooding peer for
    a configurable period, as RBFT does.

    The payload type is polymorphic: each protocol instantiates the
    network with its own message union. The network charges *link*
    costs only; CPU costs of handling messages are charged by the
    protocol layer through {!Bftcrypto.Costmodel}. *)

open Dessim
open Bftcrypto

type transport = Tcp | Udp

type config = {
  nodes : int;  (** number of nodes (3f+1) *)
  transport : transport;
  latency : Time.t;  (** one-way propagation delay *)
  jitter : Time.t;  (** uniform extra delay in [0, jitter) *)
  bandwidth_bps : float;  (** per-NIC, each direction *)
  tcp_overhead : Time.t;  (** extra latency per message under TCP *)
  frame_overhead_bytes : int;  (** per-message framing bytes *)
}

val default_config : nodes:int -> config
(** Gigabit LAN defaults: 60 us latency, 20 us jitter, 1 Gbps NICs,
    120 us TCP overhead, 60 framing bytes. *)

type 'a t

type 'a delivery = {
  src : Principal.t;
  dst : Principal.t;
  size : int;  (** payload size in bytes, excluding framing *)
  payload : 'a;
  sent_at : Time.t;
  delivered_at : Time.t;
}

val create : Engine.t -> config -> 'a t

val engine : 'a t -> Engine.t
val config : 'a t -> config

val register_node : 'a t -> int -> ('a delivery -> unit) -> unit
(** [register_node t i handler] installs the message handler of node
    [i]. Must be called before traffic reaches the node. *)

val register_client : 'a t -> int -> ('a delivery -> unit) -> unit
(** Registers a client endpoint (one NIC per client). *)

val send : 'a t -> src:Principal.t -> dst:Principal.t -> size:int -> 'a -> unit
(** [send t ~src ~dst ~size payload] queues one message. [size] is the
    wire size of the payload as computed by the protocol's codec.
    Messages to unregistered endpoints are counted as dropped. *)

val close_nic : 'a t -> node:int -> peer:Principal.t -> for_:Time.t -> unit
(** [close_nic t ~node ~peer ~for_] makes node [node] drop everything
    arriving from [peer] for the given duration — the flood defence the
    paper describes in Section V. *)

val nic_closed : 'a t -> node:int -> peer:Principal.t -> bool

(** Statistics, for tests and reporting. *)

val messages_delivered : 'a t -> int
val messages_dropped : 'a t -> int
val bytes_delivered : 'a t -> int

val node_ingress_backlog : 'a t -> node:int -> peer:Principal.t -> Time.t
(** How far behind the ingress NIC of [node] facing [peer] currently
    is; lets tests observe flooding pressure. *)
