(** The simulated cluster network.

    Reproduces the paper's testbed topology (Sections V and VI-A):
    [n] nodes interconnected by a non-blocking Gigabit switch, each
    node equipped with one dedicated NIC per other node plus one NIC
    shared by all client traffic (the Aardvark/RBFT NIC-separation
    design). Every NIC rate-limits traffic in both directions; a
    message experiences sender serialization, propagation latency
    (plus jitter and, under TCP, protocol overhead) and receiver
    serialization. Nodes may close the NIC facing a flooding peer for
    a configurable period, as RBFT does.

    The payload type is polymorphic: each protocol instantiates the
    network with its own message union. The network charges *link*
    costs only; CPU costs of handling messages are charged by the
    protocol layer through {!Bftcrypto.Costmodel}. *)

open Dessim
open Bftcrypto

type transport = Tcp | Udp

type config = {
  nodes : int;  (** number of nodes (3f+1) *)
  transport : transport;
  latency : Time.t;  (** one-way propagation delay *)
  jitter : Time.t;  (** uniform extra delay in [0, jitter) *)
  bandwidth_bps : float;  (** per-NIC, each direction *)
  tcp_overhead : Time.t;  (** extra latency per message under TCP *)
  frame_overhead_bytes : int;  (** per-message framing bytes *)
}

val default_config : nodes:int -> config
(** Gigabit LAN defaults: 60 us latency, 20 us jitter, 1 Gbps NICs,
    120 us TCP overhead, 60 framing bytes. *)

type 'a t

type 'a delivery = {
  src : Principal.t;
  dst : Principal.t;
  size : int;  (** payload size in bytes, excluding framing *)
  payload : 'a;
  sent_at : Time.t;
  delivered_at : Time.t;
  corrupted : bool;
      (** set by the chaos engine: the payload reached the receiver but
          its MAC/digest check must fail. Receivers treat such messages
          exactly like messages with an invalid authenticator. *)
  span : int;
      (** span id of the transit span recorded for this delivery
          ([-1] when the message is untraced): receivers parent their
          own processing spans on it, which is how trace causality
          crosses node boundaries. *)
}

(** {2 Fault interposition}

    The chaos engine ({!Bftchaos}) installs a single hook that rules on
    every message at send time. The hook must be deterministic given the
    scenario seed: it is consulted exactly once per [send]. *)

type fault_verdict = {
  fv_drop : bool;  (** silently lose the message *)
  fv_duplicates : int;  (** deliver this many {e extra} copies *)
  fv_extra_delay : Time.t;  (** added to the propagation delay *)
  fv_corrupt : bool;  (** deliver with [corrupted = true] *)
}

val pass_verdict : fault_verdict
(** Verdict that lets the message through untouched. *)

type fault_hook = src:Principal.t -> dst:Principal.t -> size:int -> fault_verdict

val set_fault_hook : 'a t -> fault_hook option -> unit
(** Installs (or clears) the fault hook. At most one hook is active;
    installing a new one replaces the previous. *)

val set_describe : 'a t -> ('a -> string) option -> unit
(** Installs a payload description function used to label node-bound
    deliveries when the engine is capturing scheduling choices
    ({!Dessim.Engine.set_choice_capture}). The label feeds the model
    checker's state fingerprints, so it should identify the message
    (type tag plus distinguishing fields) deterministically. Never
    consulted outside capture mode. *)

val create : Engine.t -> config -> 'a t

val engine : 'a t -> Engine.t
val config : 'a t -> config

val register_node : 'a t -> int -> ('a delivery -> unit) -> unit
(** [register_node t i handler] installs the message handler of node
    [i]. Must be called before traffic reaches the node. *)

val register_client : 'a t -> int -> ('a delivery -> unit) -> unit
(** Registers a client endpoint (one NIC per client). *)

val send :
  ?span:int ->
  ?span_tag:Bftspan.Tag.t ->
  'a t ->
  src:Principal.t ->
  dst:Principal.t ->
  size:int ->
  'a ->
  unit
(** [send t ~src ~dst ~size payload] queues one message. [size] is the
    wire size of the payload as computed by the protocol's codec.
    Messages to unregistered endpoints are counted as dropped.

    [?span] (default [-1]) piggybacks a parent span id on the message:
    when the tracer is live, delivery records a completed transit span
    covering the full wire time and hands its id to the receiver in
    {!delivery.span}. [?span_tag] (default {!Bftspan.Tag.Net_transit})
    lets reply traffic label its transit {!Bftspan.Tag.Reply} so the
    analyzer reports it as its own stage. Dropped messages (chaos,
    closed NIC, no handler) record nothing — the request's root span
    stays open, which is exactly how the analyzer flags loss. *)

val close_nic : 'a t -> node:int -> peer:Principal.t -> for_:Time.t -> unit
(** [close_nic t ~node ~peer ~for_] makes node [node] drop everything
    arriving from [peer] for the given duration — the flood defence the
    paper describes in Section V.

    Re-open semantics: the NIC reopens exactly when the closure window
    expires — a message arriving at [now + for_] or later is delivered,
    one arriving strictly before is dropped. Overlapping calls {e
    extend} the window to the latest requested expiry; a second,
    shorter closure never truncates an earlier longer one (otherwise a
    flooder could reset its own punishment by triggering a smaller
    penalty). *)

val nic_closed : 'a t -> node:int -> peer:Principal.t -> bool

(** Statistics, for tests and reporting. *)

val messages_delivered : 'a t -> int
val messages_dropped : 'a t -> int
val bytes_delivered : 'a t -> int

val node_ingress_backlog : 'a t -> node:int -> peer:Principal.t -> Time.t
(** How far behind the ingress NIC of [node] facing [peer] currently
    is; lets tests observe flooding pressure. *)
