(** Simulated cluster network substrate: wire codec and the NIC/link
    model with flooding defences. *)

module Wire = Wire
module Network = Network
