open Dessim
open Bftcrypto

type transport = Tcp | Udp

type config = {
  nodes : int;
  transport : transport;
  latency : Time.t;
  jitter : Time.t;
  bandwidth_bps : float;
  tcp_overhead : Time.t;
  frame_overhead_bytes : int;
}

let default_config ~nodes =
  {
    nodes;
    transport = Tcp;
    latency = Time.us 60;
    jitter = Time.us 20;
    bandwidth_bps = 1e9;
    tcp_overhead = Time.us 120;
    frame_overhead_bytes = 60;
  }

type 'a delivery = {
  src : Principal.t;
  dst : Principal.t;
  size : int;
  payload : 'a;
  sent_at : Time.t;
  delivered_at : Time.t;
  corrupted : bool;
  span : int;
}

(* Chaos interposition: an installed hook rules on every message at
   send time. The default verdict lets everything through untouched. *)
type fault_verdict = {
  fv_drop : bool;
  fv_duplicates : int;
  fv_extra_delay : Time.t;
  fv_corrupt : bool;
}

let pass_verdict =
  { fv_drop = false; fv_duplicates = 0; fv_extra_delay = Time.zero; fv_corrupt = false }

type fault_hook = src:Principal.t -> dst:Principal.t -> size:int -> fault_verdict

(* Each node owns, per peer node: an egress NIC queue and an ingress
   NIC queue (the same physical NIC, two directions). Client traffic
   at a node shares a single client-facing NIC; each client owns its
   own NIC. *)
type node_ports = {
  egress_to_node : Resource.t array;
  ingress_from_node : Resource.t array;
  client_egress : Resource.t;
  client_ingress : Resource.t;
  mutable closed_until : Time.t Principal.Map.t;
}

type 'a client_port = {
  c_egress : Resource.t;
  c_ingress : Resource.t;
  mutable c_handler : ('a delivery -> unit) option;
}

(* Per-channel metric handles (node-node, node-client, client-node),
   registered once per network; updated behind [Registry.active]. *)
type chan_metrics = {
  m_msgs : Bftmetrics.Registry.Counter.t;
  m_bytes : Bftmetrics.Registry.Counter.t;
  m_drops : Bftmetrics.Registry.Counter.t;
}

type net_metrics = {
  nn : chan_metrics;
  nc : chan_metrics;
  cn : chan_metrics;
}

let register_metrics () =
  let module Registry = Bftmetrics.Registry in
  let reg = Registry.default in
  let chan c =
    {
      m_msgs =
        Registry.counter reg "bft_net_messages_total"
          ~help:"Messages delivered, by channel"
          ~labels:[ ("channel", c) ];
      m_bytes =
        Registry.counter reg "bft_net_bytes_total"
          ~help:"Payload bytes delivered, by channel"
          ~labels:[ ("channel", c) ];
      m_drops =
        Registry.counter reg "bft_net_dropped_total"
          ~help:"Messages dropped (closed NIC, no handler), by channel"
          ~labels:[ ("channel", c) ];
    }
  in
  { nn = chan "node-node"; nc = chan "node-client"; cn = chan "client-node" }

type 'a t = {
  engine : Engine.t;
  cfg : config;
  rng : Rng.t;
  node_ports : node_ports array;
  node_handlers : ('a delivery -> unit) option array;
  clients : (int, 'a client_port) Hashtbl.t;
  (* Under TCP, arrivals on a connection are FIFO: jitter must not
     reorder messages of the same (src, dst) pair. *)
  last_arrival : (Principal.t * Principal.t, Time.t) Hashtbl.t;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable fault_hook : fault_hook option;
  (* Model-checker hook: labels node-bound deliveries (message type +
     identifying fields) for choice-event fingerprints. Only consulted
     while the engine captures choices. *)
  mutable describe : ('a -> string) option;
  m : net_metrics;
}

let chan_of t ~src ~dst =
  match (src, dst) with
  | Principal.Node _, Principal.Node _ -> t.m.nn
  | Principal.Node _, Principal.Client _ -> t.m.nc
  | Principal.Client _, _ -> t.m.cn

let create engine cfg =
  let make_ports i =
    {
      egress_to_node =
        Array.init cfg.nodes (fun j ->
            Resource.create engine ~name:(Printf.sprintf "n%d->n%d" i j));
      ingress_from_node =
        Array.init cfg.nodes (fun j ->
            Resource.create engine ~name:(Printf.sprintf "n%d<-n%d" i j));
      client_egress = Resource.create engine ~name:(Printf.sprintf "n%d->clients" i);
      client_ingress = Resource.create engine ~name:(Printf.sprintf "n%d<-clients" i);
      closed_until = Principal.Map.empty;
    }
  in
  {
    engine;
    cfg;
    rng = Engine.fresh_rng engine;
    node_ports = Array.init cfg.nodes make_ports;
    node_handlers = Array.make cfg.nodes None;
    clients = Hashtbl.create 32;
    last_arrival = Hashtbl.create 256;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    fault_hook = None;
    describe = None;
    m = register_metrics ();
  }

let engine t = t.engine
let config t = t.cfg

let register_node t i handler =
  assert (i >= 0 && i < t.cfg.nodes);
  t.node_handlers.(i) <- Some handler

let client_port t c =
  match Hashtbl.find_opt t.clients c with
  | Some port -> port
  | None ->
    let port =
      {
        c_egress = Resource.create t.engine ~name:(Printf.sprintf "c%d->" c);
        c_ingress = Resource.create t.engine ~name:(Printf.sprintf "c%d<-" c);
        c_handler = None;
      }
    in
    Hashtbl.add t.clients c port;
    port

let register_client t c handler = (client_port t c).c_handler <- Some handler

let serialization_time t ~size =
  let bits = float_of_int ((size + t.cfg.frame_overhead_bytes) * 8) in
  Time.of_sec_f (bits /. t.cfg.bandwidth_bps)

let propagation_delay t =
  let jitter =
    if t.cfg.jitter = Time.zero then Time.zero
    else Time.ns (Rng.int t.rng (Stdlib.max 1 t.cfg.jitter))
  in
  let overhead = match t.cfg.transport with Tcp -> t.cfg.tcp_overhead | Udp -> Time.zero in
  Time.add (Time.add t.cfg.latency jitter) overhead

let nic_closed t ~node ~peer =
  match Principal.Map.find_opt peer t.node_ports.(node).closed_until with
  | None -> false
  | Some until -> Engine.now t.engine < until

(* Overlapping closures extend the window: the NIC stays closed until
   the *latest* expiry requested so far. A second, shorter closure must
   never reopen a NIC early — that would let a flooder reset its own
   punishment by triggering a smaller penalty. *)
let close_nic t ~node ~peer ~for_ =
  let until = Time.add (Engine.now t.engine) for_ in
  let ports = t.node_ports.(node) in
  let until =
    match Principal.Map.find_opt peer ports.closed_until with
    | Some prev -> Time.max prev until
    | None -> until
  in
  ports.closed_until <- Principal.Map.add peer until ports.closed_until

let set_fault_hook t hook = t.fault_hook <- hook
let set_describe t f = t.describe <- f

(* Resolve the egress queue at the sender and the ingress queue at the
   receiver for a (src, dst) pair. *)
let egress_of t ~src ~dst =
  match src with
  | Principal.Node i ->
    (match dst with
     | Principal.Node j -> Some t.node_ports.(i).egress_to_node.(j)
     | Principal.Client _ -> Some t.node_ports.(i).client_egress)
  | Principal.Client c -> Some (client_port t c).c_egress

let deliver_to t ~src ~dst =
  match dst with
  | Principal.Node j ->
    let ingress =
      match src with
      | Principal.Node i -> t.node_ports.(j).ingress_from_node.(i)
      | Principal.Client _ -> t.node_ports.(j).client_ingress
    in
    (match t.node_handlers.(j) with
     | None -> None
     | Some handler -> Some (ingress, handler))
  | Principal.Client c ->
    let port = client_port t c in
    (match port.c_handler with
     | None -> None
     | Some handler -> Some (port.c_ingress, handler))

(* Audited from the receiver's perspective: [node] is the destination
   (or -1 for a client), [src] names the sender whose traffic was
   dropped. *)
let audit_drop t ~src ~dst ~reason =
  Bftaudit.Bus.emit
    {
      Bftaudit.Event.time = Engine.now t.engine;
      node = (match dst with Principal.Node j -> j | Principal.Client _ -> -1);
      instance = -1;
      kind = Net_dropped { src = Principal.to_string src; reason };
    }

let send_copy t ~src ~dst ~size ~corrupt ~extra_delay ~span ~span_tag payload =
  match egress_of t ~src ~dst with
  | None ->
    t.dropped <- t.dropped + 1;
    if Bftmetrics.Registry.active () then
      Bftmetrics.Registry.Counter.inc (chan_of t ~src ~dst).m_drops
  | Some egress ->
    let sent_at = Engine.now t.engine in
    let ser = serialization_time t ~size in
    Resource.submit egress ~cost:ser (fun () ->
        let delay = Time.add (propagation_delay t) extra_delay in
        let delay =
          match t.cfg.transport with
          | Udp -> delay
          | Tcp ->
            (* FIFO per connection: never arrive before the previous
               message of the same pair. *)
            let key = (src, dst) in
            let arrival = Time.add (Engine.now t.engine) delay in
            let arrival =
              match Hashtbl.find_opt t.last_arrival key with
              | Some prev when prev > arrival -> prev
              | Some _ | None -> arrival
            in
            Hashtbl.replace t.last_arrival key arrival;
            Time.sub arrival (Engine.now t.engine)
        in
        let deliver () =
          match deliver_to t ~src ~dst with
               | None ->
                 t.dropped <- t.dropped + 1;
                 if Bftmetrics.Registry.active () then
                   Bftmetrics.Registry.Counter.inc (chan_of t ~src ~dst).m_drops;
                 if Bftaudit.Bus.active () then
                   audit_drop t ~src ~dst ~reason:"no-handler"
               | Some (ingress, handler) ->
                 let closed =
                   match dst with
                   | Principal.Node j -> nic_closed t ~node:j ~peer:src
                   | Principal.Client _ -> false
                 in
                 if closed then begin
                   t.dropped <- t.dropped + 1;
                   if Bftmetrics.Registry.active () then
                     Bftmetrics.Registry.Counter.inc (chan_of t ~src ~dst).m_drops;
                   if Bftaudit.Bus.active () then
                     audit_drop t ~src ~dst ~reason:"nic-closed"
                 end
                 else
                   Resource.submit ingress ~cost:ser (fun () ->
                       t.delivered <- t.delivered + 1;
                       t.bytes <- t.bytes + size;
                       if Bftmetrics.Registry.active () then begin
                         let cm = chan_of t ~src ~dst in
                         Bftmetrics.Registry.Counter.inc cm.m_msgs;
                         Bftmetrics.Registry.Counter.add cm.m_bytes size
                       end;
                       let now = Engine.now t.engine in
                       (* Traced message: the whole wire time — sender
                          serialization + propagation + ingress — is one
                          transit span, attributed to the receiver. *)
                       let span' =
                         if span >= 0 && Bftspan.Tracer.active () then
                           Bftspan.Tracer.span ~parent:span ~tag:span_tag
                             ~node:
                               (match dst with
                               | Principal.Node j -> j
                               | Principal.Client _ -> -1)
                             ~instance:(-1) ~t0:sent_at ~t1:now
                         else -1
                       in
                       handler
                         {
                           src;
                           dst;
                           size;
                           payload;
                           sent_at;
                           delivered_at = now;
                           corrupted = corrupt;
                           span = span';
                         })
        in
        (* Node-bound deliveries are scheduling choices for the model
           checker; everything else (and every delivery when capture is
           off) keeps the ordinary timestamp-ordered path. *)
        (match dst with
         | Principal.Node j when Engine.choice_capture t.engine ->
           let src_id =
             match src with
             | Principal.Node i -> i
             | Principal.Client c -> -(c + 1)
           in
           let label =
             match t.describe with Some f -> f payload | None -> ""
           in
           ignore
             (Engine.at_choice t.engine
                (Time.add (Engine.now t.engine) delay)
                ~src:src_id ~dst:j ~label deliver)
         | Principal.Node _ | Principal.Client _ ->
           ignore (Engine.after t.engine delay deliver)))

let send ?(span = -1) ?(span_tag = Bftspan.Tag.Net_transit) t ~src ~dst ~size
    payload =
  match t.fault_hook with
  | None ->
    send_copy t ~src ~dst ~size ~corrupt:false ~extra_delay:Time.zero ~span
      ~span_tag payload
  | Some hook ->
    let v = hook ~src ~dst ~size in
    if v.fv_drop then begin
      t.dropped <- t.dropped + 1;
      if Bftmetrics.Registry.active () then
        Bftmetrics.Registry.Counter.inc (chan_of t ~src ~dst).m_drops;
      if Bftaudit.Bus.active () then audit_drop t ~src ~dst ~reason:"chaos"
    end
    else
      for _ = 0 to v.fv_duplicates do
        send_copy t ~src ~dst ~size ~corrupt:v.fv_corrupt
          ~extra_delay:v.fv_extra_delay ~span ~span_tag payload
      done

let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let bytes_delivered t = t.bytes

let node_ingress_backlog t ~node ~peer =
  match peer with
  | Principal.Node i -> Resource.backlog t.node_ports.(node).ingress_from_node.(i)
  | Principal.Client _ -> Resource.backlog t.node_ports.(node).client_ingress
