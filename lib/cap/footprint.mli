(** Per-structure memory footprint probes.

    Every O(clients)/O(history) structure in the system — request
    tracking tables, reply caches, monitoring rings, flight-recorder
    rings, span buffers — registers a probe at creation time: a name,
    an owner, a cheap [entries] closure and a [root] closure handing
    back the structure itself for deep (reachable-words) measurement.

    Probes follow the house instrumentation contract:

    - registration is idempotent by (name, owner) — a fresh component
      rebinding the same series replaces the closures, exactly like
      {!Bftmetrics.Registry.gauge_fn};
    - the hot-path hook {!note} is a guarded no-op when the global
      gate is off (one ref read and a branch, Bechamel-pinned);
    - byte measurement via [Obj.reachable_words] only happens behind
      the separate {!set_deep} gate and only at snapshot time, never
      on a hot path or a periodic tick.

    Nested structures declare a [parent] probe; a deep snapshot
    subtracts each child's reachable words from its parent so bytes
    are exclusive and a footprint table sums without double-counting. *)

type t
(** A registered probe handle. *)

val active : unit -> bool
(** The global peak-tracking gate (one ref read). *)

val enable : unit -> unit
val disable : unit -> unit

val deep : unit -> bool
(** Whether snapshots may traverse roots with [Obj.reachable_words]. *)

val set_deep : bool -> unit

val register :
  ?owner:string ->
  ?parent:string ->
  name:string ->
  entries:(unit -> int) ->
  root:(unit -> Obj.t option) ->
  unit ->
  t
(** [register ~name ~entries ~root ()] adds (or rebinds) the probe
    [(name, owner)]. [entries] must be cheap — it is read at every
    snapshot and by the [bft_footprint_entries] callback gauge this
    call registers. [parent] names the enclosing probe for exclusive
    byte accounting. [owner] defaults to ["global"]. *)

val note : t -> unit
(** Hot-path peak tracking: when {!active}, fold the current entry
    count into the probe's peak. No-op (one load, one branch) when
    the gate is off. *)

val entries : t -> int

val peak : t -> int
(** Highest entry count ever noted or snapshotted for this probe. *)

val observe_peaks : unit -> unit
(** Fold every probe's current entry count into its peak — the
    periodic-sampler path ({!Gcstats.sample} calls this). *)

val reset_peaks : unit -> unit

val clear : unit -> unit
(** Drop all probes (test isolation). *)

type row = {
  r_name : string;
  r_owner : string;
  r_entries : int;
  r_peak : int;
  r_bytes : int;  (** exclusive approximate bytes; [0] unless deep *)
}

val snapshot : ?deep:bool -> unit -> row list
(** Current state of every probe, sorted worst-first (bytes, then
    entries, then name). [deep] defaults to the global {!set_deep}
    gate; when on, each probe's root is measured with
    [Obj.reachable_words] and children are subtracted from parents. *)

val table : ?deep:bool -> unit -> string
(** {!snapshot} rendered as an aligned, human-readable table. *)

val peak_entries : unit -> (string * int) list
(** [("name/owner", peak)] for every probe, sorted by name — the
    per-structure peak series the client-population bench records. *)
