(* GC / heap telemetry. See gcstats.mli. *)

open Dessim

type sample = {
  s_at : Time.t;
  s_minor_collections : int;
  s_major_collections : int;
  s_compactions : int;
  s_minor_words : float;
  s_promoted_words : float;
  s_heap_words : int;
  s_live_words : int;
  s_entries : (string * int) list;
}

type t = {
  read_stat : unit -> Gc.stat;
  base : Gc.stat;
  window : sample option array;
  mutable next : int;
  mutable taken : int;
  mutable peak_live : int;
  mutable peak_heap : int;
}

let sample_of_stat ~now (st : Gc.stat) =
  {
    s_at = now;
    s_minor_collections = st.Gc.minor_collections;
    s_major_collections = st.Gc.major_collections;
    s_compactions = st.Gc.compactions;
    s_minor_words = st.Gc.minor_words;
    s_promoted_words = st.Gc.promoted_words;
    s_heap_words = st.Gc.heap_words;
    s_live_words = st.Gc.live_words;
    s_entries = [];
  }

let register_metrics t =
  let reg = Bftmetrics.Registry.default in
  let g name help f =
    Bftmetrics.Registry.gauge_fn reg ~help name ~labels:[] f
  in
  g "bft_gc_minor_collections" "Minor GC cycles since process start"
    (fun () -> float_of_int (t.read_stat ()).Gc.minor_collections);
  g "bft_gc_major_collections" "Major GC cycles since process start"
    (fun () -> float_of_int (t.read_stat ()).Gc.major_collections);
  g "bft_gc_minor_words" "Cumulative minor-heap allocation (words)"
    (fun () -> (t.read_stat ()).Gc.minor_words);
  g "bft_gc_promoted_words" "Cumulative words promoted to the major heap"
    (fun () -> (t.read_stat ()).Gc.promoted_words);
  g "bft_gc_heap_words" "Major heap size (words)"
    (fun () -> float_of_int (t.read_stat ()).Gc.heap_words);
  g "bft_gc_live_words" "Live words as of the last major GC"
    (fun () -> float_of_int (t.read_stat ()).Gc.live_words)

let create ?(read_stat = Gc.quick_stat) ?(window = 64) ?(metrics = false) () =
  let t =
    {
      read_stat;
      base = read_stat ();
      window = Array.make (max 2 window) None;
      next = 0;
      taken = 0;
      peak_live = 0;
      peak_heap = 0;
    }
  in
  if metrics then register_metrics t;
  t

let sample t ~now =
  Footprint.observe_peaks ();
  let st = t.read_stat () in
  let s =
    { (sample_of_stat ~now st) with
      s_entries =
        Footprint.snapshot ~deep:false ()
        |> List.map (fun r ->
               (r.Footprint.r_name ^ "/" ^ r.Footprint.r_owner,
                r.Footprint.r_entries))
        |> List.sort compare }
  in
  if s.s_live_words > t.peak_live then t.peak_live <- s.s_live_words;
  if s.s_heap_words > t.peak_heap then t.peak_heap <- s.s_heap_words;
  t.window.(t.next) <- Some s;
  t.next <- (t.next + 1) mod Array.length t.window;
  t.taken <- t.taken + 1

let samples t =
  let n = Array.length t.window in
  let acc = ref [] in
  for i = 0 to n - 1 do
    match t.window.((t.next + n - 1 - i) mod n) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  !acc

let last t =
  let n = Array.length t.window in
  t.window.((t.next + n - 1) mod n)

let sample_count t = t.taken
let baseline t = t.base
let peak_live_words t = t.peak_live
let peak_heap_words t = t.peak_heap

let deltas t =
  match last t with
  | None -> []
  | Some s ->
    [
      ("minor_collections",
       float_of_int (s.s_minor_collections - t.base.Gc.minor_collections));
      ("major_collections",
       float_of_int (s.s_major_collections - t.base.Gc.major_collections));
      ("compactions", float_of_int (s.s_compactions - t.base.Gc.compactions));
      ("minor_words", s.s_minor_words -. t.base.Gc.minor_words);
      ("promoted_words", s.s_promoted_words -. t.base.Gc.promoted_words);
    ]

type growth = {
  g_span : Time.t;
  g_live_slope : float;
  g_heap_slope : float;
  g_alloc_rate : float;
  g_culprit : (string * float) option;
}

let growth t =
  match samples t with
  | [] | [ _ ] -> None
  | first :: _ as all ->
    let last = List.nth all (List.length all - 1) in
    let span = Time.sub last.s_at first.s_at in
    if span <= Time.zero then None
    else
      let sec = Time.to_sec_f span in
      let slope a b = (float_of_int b -. float_of_int a) /. sec in
      let culprit =
        List.fold_left
          (fun best (key, e1) ->
            match List.assoc_opt key first.s_entries with
            | None -> best
            | Some e0 ->
              let rate = float_of_int (e1 - e0) /. sec in
              if rate > 0.0
                 && (match best with
                    | None -> true
                    | Some (_, r) -> rate > r)
              then Some (key, rate)
              else best)
          None last.s_entries
      in
      Some
        {
          g_span = span;
          g_live_slope = slope first.s_live_words last.s_live_words;
          g_heap_slope = slope first.s_heap_words last.s_heap_words;
          g_alloc_rate = (last.s_minor_words -. first.s_minor_words) /. sec;
          g_culprit = culprit;
        }

let counter_series t =
  let all = samples t in
  let series f = List.map (fun s -> (s.s_at, f s)) all in
  [
    ("gc.live_words", series (fun s -> float_of_int s.s_live_words));
    ("gc.heap_words", series (fun s -> float_of_int s.s_heap_words));
    ("gc.minor_collections",
     series (fun s -> float_of_int s.s_minor_collections));
    ("gc.major_collections",
     series (fun s -> float_of_int s.s_major_collections));
    ("gc.minor_words", series (fun s -> s.s_minor_words));
  ]

let write_chrome_counters t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc {|{"displayTimeUnit":"ms","traceEvents":[|};
      let first = ref true in
      let sep () = if !first then first := false else output_char oc ',' in
      List.iter
        (fun (name, points) ->
          List.iter
            (fun (at, v) ->
              sep ();
              Printf.fprintf oc
                {|{"name":"%s","ph":"C","ts":%.3f,"pid":0,"tid":0,"args":{"value":%.0f}}|}
                name (Time.to_us_f at) v)
            points)
        (counter_series t);
      output_string oc "]}")
