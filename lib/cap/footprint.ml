(* Per-structure footprint probes. See footprint.mli. *)

type t = {
  p_name : string;
  p_owner : string;
  p_parent : string option;
  mutable p_entries : unit -> int;
  mutable p_root : unit -> Obj.t option;
  mutable p_peak : int;
}

let enabled = ref false
let active () = !enabled
let enable () = enabled := true
let disable () = enabled := false

let deep_enabled = ref false
let deep () = !deep_enabled
let set_deep b = deep_enabled := b

let probes : t list ref = ref []

let find_opt ~name ~owner =
  List.find_opt (fun p -> p.p_name = name && p.p_owner = owner) !probes

let word_bytes = Sys.word_size / 8

let register ?(owner = "global") ?parent ~name ~entries ~root () =
  let p =
    match find_opt ~name ~owner with
    | Some p ->
      (* Rebind, like Registry.gauge_fn: a fresh component takes over
         the series; the peak restarts with it. *)
      p.p_entries <- entries;
      p.p_root <- root;
      p.p_peak <- 0;
      p
    | None ->
      let p =
        { p_name = name; p_owner = owner; p_parent = parent;
          p_entries = entries; p_root = root; p_peak = 0 }
      in
      probes := !probes @ [ p ];
      p
  in
  Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
    ~help:"Live entry count of an instrumented structure"
    "bft_footprint_entries"
    ~labels:[ ("structure", name); ("owner", owner) ]
    (fun () -> float_of_int (p.p_entries ()));
  p

let note p =
  if !enabled then begin
    let e = p.p_entries () in
    if e > p.p_peak then p.p_peak <- e
  end

let entries p = p.p_entries ()
let peak p = p.p_peak

let observe_peaks () =
  List.iter
    (fun p ->
      let e = p.p_entries () in
      if e > p.p_peak then p.p_peak <- e)
    !probes

let reset_peaks () = List.iter (fun p -> p.p_peak <- 0) !probes
let clear () = probes := []

type row = {
  r_name : string;
  r_owner : string;
  r_entries : int;
  r_peak : int;
  r_bytes : int;
}

let reachable p =
  match p.p_root () with
  | Some o -> Obj.reachable_words o * word_bytes
  | None -> 0

let snapshot ?deep () =
  let deep = match deep with Some d -> d | None -> !deep_enabled in
  let raw =
    List.map
      (fun p ->
        let e = p.p_entries () in
        if e > p.p_peak then p.p_peak <- e;
        (p, e, if deep then reachable p else 0))
      !probes
  in
  let rows =
    List.map
      (fun (p, e, bytes) ->
        (* Exclusive bytes: subtract children reachable from this
           probe's root so nested probes sum without double-count. *)
        let child_bytes =
          List.fold_left
            (fun acc (c, _, cb) ->
              if c.p_parent = Some p.p_name then acc + cb else acc)
            0 raw
        in
        {
          r_name = p.p_name;
          r_owner = p.p_owner;
          r_entries = e;
          r_peak = p.p_peak;
          r_bytes = (if deep then max 0 (bytes - child_bytes) else 0);
        })
      raw
  in
  List.sort
    (fun a b ->
      match compare b.r_bytes a.r_bytes with
      | 0 -> (
        match compare b.r_entries a.r_entries with
        | 0 -> (
          match compare a.r_name b.r_name with
          | 0 -> compare a.r_owner b.r_owner
          | c -> c)
        | c -> c)
      | c -> c)
    rows

let table ?deep () =
  let rows = snapshot ?deep () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %-12s %10s %10s %12s\n" "structure" "owner"
       "entries" "peak" "bytes");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %-12s %10d %10d %12d\n" r.r_name r.r_owner
           r.r_entries r.r_peak r.r_bytes))
    rows;
  Buffer.contents buf

let peak_entries () =
  List.map (fun p -> (p.p_name ^ "/" ^ p.p_owner, p.p_peak)) !probes
  |> List.sort (fun (a, _) (b, _) -> compare a b)
