(** Memory & capacity observability: per-structure footprint probes
    and GC/heap telemetry. Zero-cost when disabled, like the audit
    bus, the metrics registry and the span tracer. *)

module Footprint = Footprint
module Gcstats = Gcstats
