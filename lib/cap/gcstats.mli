(** GC / heap telemetry: [Gc.quick_stat] sampling, sliding-window
    growth analysis, metric families and Chrome-trace counter series.

    A sampler owns a baseline [Gc.stat] captured at creation and a
    bounded window of timestamped samples. Each {!sample} also folds
    the current {!Footprint} probe entry counts into the window, so
    growth analysis can name the fastest-growing structure — the
    culprit the [mem-growth] doctor trigger reports.

    [read_stat] is injectable so the synthetic-leak self-test can
    fabricate a deterministic heap trajectory; the default is
    [Gc.quick_stat] (cheap, no heap traversal).

    Registering the [bft_gc_*] callback-gauge families is opt-in
    ([~metrics:true]) because GC word counts are wall-runtime state,
    not sim state: putting them in the default registry would leak
    nondeterminism into recorder snapshots and break byte-identical
    incident-bundle replays. *)

open Dessim

type sample = {
  s_at : Time.t;
  s_minor_collections : int;  (** cumulative since process start *)
  s_major_collections : int;
  s_compactions : int;
  s_minor_words : float;  (** cumulative allocation in the minor heap *)
  s_promoted_words : float;
  s_heap_words : int;
  s_live_words : int;  (** as of the last major GC ([Gc.quick_stat]) *)
  s_entries : (string * int) list;  (** footprint probe entries, sorted *)
}

type t

val create :
  ?read_stat:(unit -> Gc.stat) -> ?window:int -> ?metrics:bool -> unit -> t
(** [window] bounds the sample ring (default 64). [metrics] (default
    false) registers the [bft_gc_*] callback gauges in the default
    registry. *)

val sample : t -> now:Time.t -> unit
(** Take one sample: read the stat, capture probe entries, fold
    footprint peaks ({!Footprint.observe_peaks}). *)

val last : t -> sample option

val samples : t -> sample list
(** Window contents, oldest first. *)

val sample_count : t -> int
(** Total samples ever taken. *)

val baseline : t -> Gc.stat

val deltas : t -> (string * float) list
(** Cumulative GC activity between the baseline and the latest
    sample: minor/major collections, minor/promoted words — the
    per-point GC cost a bench records. Empty before the first
    sample. *)

val peak_live_words : t -> int
val peak_heap_words : t -> int

type growth = {
  g_span : Time.t;  (** window time span *)
  g_live_slope : float;  (** live words per second over the window *)
  g_heap_slope : float;
  g_alloc_rate : float;  (** minor words per second over the window *)
  g_culprit : (string * float) option;
      (** fastest-growing probe ("name/owner", entries per second) *)
}

val growth : t -> growth option
(** [None] until the window holds two samples spanning nonzero time. *)

val counter_series : t -> (string * (Time.t * float) list) list
(** Named counter series over the window (live words, heap words,
    minor collections …) for Chrome-trace "C" events. *)

val write_chrome_counters : t -> string -> unit
(** Write the window as a standalone Chrome trace_event JSON file of
    counter events (open in chrome://tracing or Perfetto). *)
