open Dessim
open Bftcrypto
open Bftnet
open Pbftcore.Types

type pending = {
  sent_at : Time.t;
  span : int;  (* root span id of the traced request; -1 if unsampled *)
  mutable replies : (int * string) list;
  mutable done_ : bool;
}

type t = {
  engine : Engine.t;
  net : Node.msg Network.t;
  f : int;
  id : int;
  payload_size : int;
  mutable rid : int;
  mutable rate : float;
  mutable rate_epoch : int;
  pending : pending Request_id_table.t;
  mutable sent : int;
  mutable completed : int;
  latencies : Bftmetrics.Hist.t;
  rng : Rng.t;
}

let id t = t.id
let sent t = t.sent
let completed t = t.completed
let latencies t = t.latencies

let on_reply t (id : request_id) ~node ~result =
  match Request_id_table.find_opt t.pending id with
  | None -> ()
  | Some p when p.done_ -> ()
  | Some p ->
    if not (List.mem_assoc node p.replies) then begin
      p.replies <- (node, result) :: p.replies;
      let matching =
        List.length (List.filter (fun (_, r) -> String.equal r result) p.replies)
      in
      if matching >= t.f + 1 then begin
        p.done_ <- true;
        t.completed <- t.completed + 1;
        let now = Engine.now t.engine in
        Bftmetrics.Hist.add t.latencies (Time.to_sec_f (Time.sub now p.sent_at));
        Bftspan.Tracer.finish p.span ~t1:now;
        Request_id_table.remove t.pending id
      end
    end

let create engine net ~f ~id ?(payload_size = 8) () =
  let t =
    {
      engine;
      net;
      f;
      id;
      payload_size;
      rid = 0;
      rate = 0.0;
      rate_epoch = 0;
      pending = Request_id_table.create 256;
      sent = 0;
      completed = 0;
      latencies = Bftmetrics.Hist.create ();
      rng = Engine.fresh_rng engine;
    }
  in
  Network.register_client net id (fun d ->
      if d.Network.corrupted then ()  (* failed authenticator: ignore *)
      else
      match d.Network.payload with
      | Node.Reply { id; result; node } -> on_reply t id ~node ~result
      | Node.Request _ | Node.Order _ -> ());
  t

let send_one t =
  t.rid <- t.rid + 1;
  let op = String.make t.payload_size 'x' in
  let desc = desc_of_op ~client:t.id ~rid:t.rid op in
  let msg = Node.Request { desc; sig_valid = true } in
  let n = (3 * t.f) + 1 in
  let size = 16 + desc.op_size + Keys.signature_size + (n * Keys.mac_tag_size) in
  let now = Engine.now t.engine in
  let span =
    if Bftspan.Tracer.sampled ~rid:desc.id.rid then
      Bftspan.Tracer.root ~client:t.id ~rid:desc.id.rid ~node:(-1) ~instance:(-1)
        ~tag:Bftspan.Tag.Client ~t0:now
    else -1
  in
  Request_id_table.replace t.pending desc.id
    { sent_at = now; span; replies = []; done_ = false };
  t.sent <- t.sent + 1;
  for node = 0 to n - 1 do
    Network.send ~span t.net ~src:(Principal.client t.id) ~dst:(Principal.node node)
      ~size msg
  done

let set_rate t r =
  t.rate <- r;
  t.rate_epoch <- t.rate_epoch + 1;
  let epoch = t.rate_epoch in
  if r > 0.0 then begin
    let rec loop () =
      if t.rate_epoch = epoch && t.rate > 0.0 then begin
        let gap = Rng.exponential t.rng ~mean:(1.0 /. t.rate) in
        ignore
          (Engine.after t.engine (Time.of_sec_f gap) (fun () ->
               if t.rate_epoch = epoch && t.rate > 0.0 then begin
                 send_one t;
                 loop ()
               end))
      end
    in
    loop ()
  end
