open Dessim
open Bftcrypto
open Bftnet
open Bftapp
open Pbftcore.Types
module Spans = Bftspan.Tracer

type msg =
  | Request of { desc : request_desc; sig_valid : bool }
  | Order of Pbftcore.Messages.t
  | Reply of { id : request_id; result : string; node : int }

type config = {
  f : int;
  monitoring_period : Time.t;
  policy : Policy.config;
  batch_size : int;
  batch_delay : Time.t;
  post_vc_quiet : Time.t;
  exec_cost : Time.t;
  costs : Costmodel.t;
  order_identifiers_only : bool;
  body_copy_factor : float;
}

let default_config ~f =
  {
    f;
    monitoring_period = Time.ms 100;
    policy = Policy.default_config ~n:((3 * f) + 1);
    batch_size = 64;
    batch_delay = Time.ms 1;
    post_vc_quiet = Time.ms 400;
    exec_cost = Time.us 1;
    costs = Costmodel.default;
    order_identifiers_only = false;
    body_copy_factor = 6.0;
  }

type faults = { mutable track_required : bool; mutable attack_margin : float }

type t = {
  engine : Engine.t;
  clock : Clock.t;  (* local periodic timers; skewable by the chaos engine *)
  net : msg Network.t;
  cfg : config;
  id : int;
  service : Service.t;
  verification : Resource.t;
  ordering : Resource.t;
  execution : Resource.t;
  mutable replica : Pbftcore.Replica.t option;
  policy : Policy.t;
  faults : faults;
  sig_checked : unit Request_id_table.t;
  executed : string Request_id_table.t;
  exec_counter : Bftmetrics.Throughput.t;
  mutable exec_count : int;
  mutable exec_digest : string;
  mutable attack_delay : Time.t;
  mutable started : bool;
}

let id t = t.id
let faults t = t.faults
let replica t = match t.replica with Some r -> r | None -> assert false
let policy t = t.policy
let executed_count t = t.exec_count
let executed_counter t = t.exec_counter
let execution_digest t = t.exec_digest
let view_changes t = Pbftcore.Replica.view_changes_completed (replica t)

let set_clock_factor t k = Clock.set_factor t.clock k

let set_cpu_factor t s =
  List.iter (fun r -> Resource.set_speed r s) [ t.verification; t.ordering; t.execution ]

let n_nodes t = (3 * t.cfg.f) + 1

let msg_size t m =
  match m with
  | Request { desc; _ } ->
    16 + desc.op_size + Keys.signature_size + (n_nodes t * Keys.mac_tag_size)
  | Order om ->
    16
    + Pbftcore.Messages.wire_size ~n:(n_nodes t)
        ~order_full_requests:(not t.cfg.order_identifiers_only) om
  | Reply { result; _ } -> 16 + String.length result + Keys.mac_tag_size

(* The prototype this baseline models copies full request bodies
   several times along the ordering path (assembly, log insertion,
   per-destination buffers); identifiers-only messages are cheap.
   [cost_bytes] inflates the CPU accounting of body-carrying ordering
   messages accordingly — the wire size is unaffected. *)
let cost_bytes t m =
  let size = msg_size t m in
  match m with
  | Order (Pbftcore.Messages.Pre_prepare _) when not t.cfg.order_identifiers_only ->
    int_of_float (float_of_int size *. t.cfg.body_copy_factor)
  | Order _ | Request _ | Reply _ -> size

let send_from ?(span = -1) ?span_tag t thread ~dst m =
  let size = msg_size t m in
  Resource.charge thread (Costmodel.send t.cfg.costs ~bytes:(cost_bytes t m));
  Network.send ~span ?span_tag t.net ~src:(Principal.node t.id) ~dst ~size m

let broadcast_nodes t thread m =
  let size = msg_size t m in
  Resource.charge thread
    (Costmodel.authenticator_gen t.cfg.costs ~bytes:size ~count:(n_nodes t));
  for dst = 0 to n_nodes t - 1 do
    if dst <> t.id then begin
      Resource.charge thread (Costmodel.send t.cfg.costs ~bytes:(cost_bytes t m));
      Network.send t.net ~src:(Principal.node t.id) ~dst:(Principal.node dst) ~size m
    end
  done

let reply_to ?(span = -1) t (id : request_id) result =
  send_from ~span ~span_tag:Bftspan.Tag.Reply t t.execution
    ~dst:(Principal.client id.client)
    (Reply { id; result; node = t.id })

(* Single-instance protocol: every audit event is instance 0; the
   ordering-phase events come from the shared Pbftcore.Replica. *)
let audit t kind =
  Bftaudit.Bus.emit
    { Bftaudit.Event.time = Engine.now t.engine; node = t.id; instance = 0; kind }

let execute_batch t descs =
  List.iter
    (fun (desc : request_desc) ->
      if not (Request_id_table.mem t.executed desc.id) then begin
        let cost =
          Time.max t.cfg.exec_cost (t.service.Service.exec_cost desc.op)
        in
        let ospan =
          if Spans.active () then
            Pbftcore.Replica.take_span (replica t) ~id:desc.id
          else -1
        in
        let espan =
          Spans.job ~parent:ospan ~tag:Bftspan.Tag.Execution ~node:t.id
            ~instance:0 ~now:(Engine.now t.engine)
        in
        Resource.submit ~span:espan t.execution ~cost (fun () ->
            if not (Request_id_table.mem t.executed desc.id) then begin
              let result = t.service.Service.execute desc.op in
              Request_id_table.replace t.executed desc.id result;
              t.exec_count <- t.exec_count + 1;
              if Bftaudit.Bus.active () then
                audit t
                  (Bftaudit.Event.Executed
                     {
                       client = desc.id.client;
                       rid = desc.id.rid;
                       digest = desc.digest;
                     });
              Bftmetrics.Throughput.record t.exec_counter ~now:(Engine.now t.engine);
              t.exec_digest <- Sha256.digest_string (t.exec_digest ^ desc.digest);
              Resource.charge t.execution
                (Costmodel.mac_gen t.cfg.costs ~bytes:(String.length result + 16));
              reply_to ~span:espan t desc.id result
            end)
      end)
    descs

let make_replica t =
  let cfg =
    {
      (Pbftcore.Replica.default_config ~n:(n_nodes t) ~f:t.cfg.f ~replica_id:t.id) with
      Pbftcore.Replica.batch_size = t.cfg.batch_size;
      batch_delay = t.cfg.batch_delay;
      order_full_requests = not t.cfg.order_identifiers_only;
      post_vc_quiet = t.cfg.post_vc_quiet;
    }
  in
  let send dst m = send_from t t.ordering ~dst:(Principal.node dst) (Order m) in
  let broadcast m = broadcast_nodes t t.ordering (Order m) in
  let deliver _seq descs =
    Policy.note_ordered t.policy ~count:(List.length descs);
    execute_batch t descs
  in
  let on_view_change _v = Policy.on_view_start t.policy ~now:(Engine.now t.engine) in
  Pbftcore.Replica.create ~clock:t.clock t.engine cfg
    { Pbftcore.Replica.send; broadcast; deliver; on_view_change }

let submit_for_ordering t ~span (desc : request_desc) =
  let dspan =
    Spans.job ~parent:span ~tag:Bftspan.Tag.Dispatch ~node:t.id ~instance:0
      ~now:(Engine.now t.engine)
  in
  Resource.submit ~span:dspan t.ordering ~cost:(Time.ns 200) (fun () ->
      Pbftcore.Replica.submit ~span:dspan (replica t) desc)

let handle_request t ~span (desc : request_desc) ~sig_valid =
  if Request_id_table.mem t.executed desc.id then begin
    match Request_id_table.find_opt t.executed desc.id with
    | Some result -> reply_to t desc.id result
    | None -> ()
  end
  else if Request_id_table.mem t.sig_checked desc.id then
    submit_for_ordering t ~span desc
  else begin
    if Bftaudit.Bus.active () then
      audit t
        (Bftaudit.Event.Request_received
           { client = desc.id.client; rid = desc.id.rid; size = desc.op_size });
    Resource.charge t.verification
      (Costmodel.sig_verify t.cfg.costs ~bytes:desc.op_size);
    if sig_valid then begin
      Request_id_table.replace t.sig_checked desc.id ();
      submit_for_ordering t ~span desc
    end
  end

let on_delivery t (d : msg Network.delivery) =
  let bytes = cost_bytes t d.Network.payload in
  let base =
    Time.add
      (Costmodel.recv t.cfg.costs ~bytes)
      (Costmodel.mac_verify t.cfg.costs ~bytes:d.Network.size)
  in
  if d.Network.corrupted then
    (* Failed authenticator: pay the verification cost, then drop. *)
    Resource.submit t.verification ~cost:base (fun () -> ())
  else
  match d.Network.payload with
  | Request { desc; sig_valid } ->
    let vspan =
      Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Crypto_verify ~node:t.id
        ~instance:0 ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:vspan t.verification ~cost:base (fun () ->
        handle_request t ~span:vspan desc ~sig_valid)
  | Order m ->
    let from =
      match d.Network.src with Principal.Node i -> i | Principal.Client _ -> -1
    in
    if from >= 0 then
      Resource.submit t.ordering ~cost:base (fun () ->
          Pbftcore.Replica.receive (replica t) ~from m)
  | Reply _ -> ()

(* The Figure 2 adversary: when this node is the primary, it caps its
   ordering rate just above the (known, because the faulty node runs
   the same policy) requirement. *)
let update_attack_delay t =
  let r = replica t in
  let adversary = Pbftcore.Replica.adversary r in
  if t.faults.track_required && Pbftcore.Replica.is_primary r then begin
    let required = Policy.required_rate t.policy in
    let target = required *. t.faults.attack_margin in
    adversary.Pbftcore.Replica.pp_rate_limit <- (fun () -> target)
  end
  else adversary.Pbftcore.Replica.pp_rate_limit <- (fun () -> 0.0)

let monitoring_tick t =
  let r = replica t in
  let verdict =
    Policy.tick t.policy ~now:(Engine.now t.engine)
      ~pending:(Pbftcore.Replica.pending_count r)
  in
  update_attack_delay t;
  match verdict with
  | Policy.Demand_view_change when not (Pbftcore.Replica.in_view_change r) ->
    Pbftcore.Replica.force_view_change r
  | Policy.Demand_view_change | Policy.Ok -> ()

let rec arm_monitoring t =
  ignore
    (Clock.after t.clock t.cfg.monitoring_period (fun () ->
         Resource.submit t.ordering ~cost:(Time.us 2) (fun () -> monitoring_tick t);
         arm_monitoring t))

let create engine net cfg ~id ~service =
  let mk name = Resource.create engine ~name:(Printf.sprintf "av%d.%s" id name) in
  let t =
    {
      engine;
      clock = Clock.create engine;
      net;
      cfg;
      id;
      service;
      verification = mk "verification";
      ordering = mk "ordering";
      execution = mk "execution";
      replica = None;
      policy = Policy.create cfg.policy;
      faults = { track_required = false; attack_margin = 1.10 };
      sig_checked = Request_id_table.create 4096;
      executed = Request_id_table.create 4096;
      exec_counter = Bftmetrics.Throughput.create ();
      exec_count = 0;
      exec_digest = "genesis";
      attack_delay = Time.zero;
      started = false;
    }
  in
  t.replica <- Some (make_replica t);
  Network.register_node net id (fun d -> on_delivery t d);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    Policy.on_view_start t.policy ~now:(Engine.now t.engine);
    arm_monitoring t
  end
