open Dessim

type t = {
  engine : Engine.t;
  net : Node.msg Bftnet.Network.t;
  nodes : Node.t array;
  clients : Client.t array;
}

let create ?(seed = 42L) ?(clients = 0) ?(payload_size = 8)
    ?(service = fun () -> Bftapp.Null_service.create ()) (cfg : Node.config) =
  let engine = Engine.create ~seed () in
  let n = (3 * cfg.Node.f) + 1 in
  let net = Bftnet.Network.create engine (Bftnet.Network.default_config ~nodes:n) in
  let nodes =
    Array.init n (fun id -> Node.create engine net cfg ~id ~service:(service ()))
  in
  let clients =
    Array.init clients (fun id ->
        Client.create engine net ~f:cfg.Node.f ~id ~payload_size ())
  in
  Array.iter Node.start nodes;
  { engine; net; nodes; clients }

let engine t = t.engine
let network t = t.net
let node t i = t.nodes.(i)
let nodes t = t.nodes
let client t i = t.clients.(i)
let clients t = t.clients

let run_for t d =
  let target = Time.add (Engine.now t.engine) d in
  Engine.run ~until:target t.engine

(* Measure system progress at the most advanced node: a Byzantine or
   lagging node must not distort throughput readings. *)
let most_advanced t =
  Array.fold_left
    (fun best node ->
      if Node.executed_count node > Node.executed_count best then node else best)
    t.nodes.(0) t.nodes

let total_executed t = Node.executed_count (most_advanced t)

let throughput_between t start stop =
  Bftmetrics.Throughput.rate_between
    (Node.executed_counter (most_advanced t))
    start stop

let agreement_ok t ~faulty =
  let correct =
    Array.to_list t.nodes
    |> List.filter (fun n ->
           (not (List.mem (Node.id n) faulty))
           (* see Rbft.Cluster.agreement_ok: state-transferred nodes
              adopt checkpoints wholesale and execute a shorter log *)
           && Pbftcore.Replica.state_transfers (Node.replica n) = 0)
  in
  match correct with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun n ->
        Node.executed_count n = Node.executed_count first
        && String.equal (Node.execution_digest n) (Node.execution_digest first))
      rest
