(** The Aardvark baseline (Clement et al., NSDI 2009), as analysed in
    Section III-B of the RBFT paper: PBFT with regular view changes
    driven by a ratcheting throughput requirement, signed client
    requests, and full-request ordering. *)

module Policy = Policy
module Node = Node
module Client = Client
module Cluster = Cluster
