open Dessim

type config = {
  grace : Time.t;
  baseline_fraction : float;
  ratchet : float;
  history_length : int;
  view_warmup : Time.t;
}

let default_config ~n =
  {
    grace = Time.sec 5;
    baseline_fraction = 0.9;
    ratchet = 1.01;
    history_length = n;
    view_warmup = Time.ms 700;
  }

type t = {
  cfg : config;
  mutable view_start : Time.t;
  mutable view_ordered : int;
  mutable window_start : Time.t;
  mutable window_ordered : int;
  mutable required : float;
  mutable grace_until : Time.t;
  mutable history : float list;  (* most recent first *)
  mutable last_rate : float;
  mutable recent_rates : float list;  (* rolling window of recent rates *)
  mutable dead_windows : int;  (* consecutive windows with zero progress *)
}

let create cfg =
  {
    cfg;
    view_start = Time.zero;
    view_ordered = 0;
    window_start = Time.zero;
    window_ordered = 0;
    required = 0.0;
    grace_until = Time.zero;
    history = [];
    last_rate = 0.0;
    recent_rates = [];
    dead_windows = 0;
  }

let config t = t.cfg

let take n xs =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: tl -> go (n - 1) (x :: acc) tl
  in
  go n [] xs

let on_view_start t ~now =
  let view_span = Time.to_sec_f (Time.sub now t.view_start) in
  (* Every view that outlived its warmup enters the history — exactly
     like the original protocol, whose requirement can decay once a
     few underperforming views push low entries into the window.
     Infant views (evicted before warming up) carry no signal. *)
  if view_span >= 2.0 *. Time.to_sec_f t.cfg.view_warmup then begin
    let avg = float_of_int t.view_ordered /. view_span in
    t.history <- take t.cfg.history_length (avg :: t.history)
  end;
  t.recent_rates <- [];
  t.view_start <- now;
  t.view_ordered <- 0;
  t.window_start <- now;
  t.window_ordered <- 0;
  t.grace_until <- Time.add now t.cfg.grace;
  t.dead_windows <- 0;
  let best = List.fold_left Stdlib.max 0.0 t.history in
  t.required <- t.cfg.baseline_fraction *. best

let note_ordered t ~count =
  t.view_ordered <- t.view_ordered + count;
  t.window_ordered <- t.window_ordered + count

let required_rate t = t.required

type verdict = Ok | Demand_view_change

let observed_rate t = t.last_rate

let tick t ~now ~pending =
  let window = Time.to_sec_f (Time.sub now t.window_start) in
  let rate = if window <= 0.0 then 0.0 else float_of_int t.window_ordered /. window in
  t.last_rate <- rate;
  (* Judge the primary on a smoothed rate (last 5 windows): ordering is
     bursty at the batch granularity and a single-window dip says
     little. *)
  t.recent_rates <- take 5 (rate :: t.recent_rates);
  let smoothed =
    List.fold_left ( +. ) 0.0 t.recent_rates
    /. float_of_int (List.length t.recent_rates)
  in
  (* The heartbeat only fires after several consecutive silent windows
     with work pending: a primary digesting a large re-proposal after a
     view change is slow, not dead. *)
  if pending > 0 && t.window_ordered = 0 then
    t.dead_windows <- t.dead_windows + 1
  else t.dead_windows <- 0;
  let heartbeat_expired = t.dead_windows >= 3 in
  t.window_start <- now;
  t.window_ordered <- 0;
  (* The throughput requirement is only meaningful once enough
     requests flowed through the smoothing window; judging a primary on
     a handful of requests is pure noise. *)
  let samples =
    int_of_float
      (List.fold_left ( +. ) 0.0 t.recent_rates *. window)
  in
  let enough_samples = samples >= 256 in
  (* Bootstrap: with no completed view yet, anchor the requirement to
     the first observed throughput so that the ratchet still ends the
     initial view. *)
  if t.required = 0.0 && smoothed > 0.0 && enough_samples then
    t.required <- t.cfg.baseline_fraction *. smoothed;
  if now > t.grace_until then t.required <- t.required *. t.cfg.ratchet;
  (* A view that just started is still recovering (quiet period,
     pipeline refill): judging it would make every view change trigger
     the next one. *)
  let warming = Time.sub now t.view_start < t.cfg.view_warmup in
  if warming then Ok
  else if heartbeat_expired then Demand_view_change
  else if t.required > 0.0 && enough_samples && smoothed < t.required then
    Demand_view_change
  else Ok
