(** Aardvark's regular-view-change policy (Section III-B of the RBFT
    paper, after Clement et al., NSDI 2009).

    A primary must sustain, at the start of its view, at least 90 % of
    the maximum throughput achieved by the primaries of the last [n]
    views. The requirement is stable during an initial grace period
    and is then raised by 1 % periodically until the primary fails to
    meet it, at which point the replica votes a view change. A
    heartbeat check demands a change from a primary that orders
    nothing while requests are pending. *)

open Dessim

type t

type config = {
  grace : Time.t;  (** 5 s in the paper *)
  baseline_fraction : float;  (** 0.9 *)
  ratchet : float;  (** multiplicative raise per period, 1.01 *)
  history_length : int;  (** views remembered, n in the paper *)
  view_warmup : Time.t;
      (** period after a view change during which the new primary is
          not judged (recovery, pipeline refill) *)
}

val default_config : n:int -> config

val create : config -> t

val config : t -> config

val on_view_start : t -> now:Time.t -> unit
(** Close the current view's record (pushing its average throughput
    into the history) and compute the new view's initial requirement. *)

val note_ordered : t -> count:int -> unit

val required_rate : t -> float
(** Current requirement in req/s (0 while the history is empty). *)

type verdict = Ok | Demand_view_change

val tick : t -> now:Time.t -> pending:int -> verdict
(** Evaluate one monitoring period: compares the window's throughput
    against the (possibly ratcheted) requirement; also fires when the
    primary ordered nothing despite [pending > 0] requests (heartbeat
    expiry). *)

val observed_rate : t -> float
(** Throughput measured over the last completed period. *)
