(** An Aardvark replica node.

    One PBFT-style replica per node (full requests in PRE-PREPAREs),
    fronted by a verification thread (MAC + signature on every client
    request) and an execution thread, with the regular-view-change
    policy of {!Policy} evaluated every monitoring period.

    The faulty-primary attack of the RBFT paper's Figure 2 is built
    in: a node with [track_required] set delays its PRE-PREPAREs so
    that its throughput stays just above the ratcheting requirement —
    slow, but never slow enough to be evicted early. *)

open Dessim
open Bftapp

type msg =
  | Request of { desc : Pbftcore.Types.request_desc; sig_valid : bool }
  | Order of Pbftcore.Messages.t
  | Reply of { id : Pbftcore.Types.request_id; result : string; node : int }

type config = {
  f : int;
  monitoring_period : Time.t;
  policy : Policy.config;
  batch_size : int;
  batch_delay : Time.t;
  post_vc_quiet : Time.t;
      (** recovery pause after a view change — the cost that makes
          Aardvark's fault-free throughput trail RBFT's (Sec. VI-B) *)
  exec_cost : Time.t;
  costs : Bftcrypto.Costmodel.t;
  order_identifiers_only : bool;
      (** ablation of Section VI-B: order identifiers instead of full
          requests (RBFT-style); default false (Aardvark behaviour) *)
  body_copy_factor : float;
      (** how many times the prototype touches full request bodies on
          the ordering path; calibrated so the 4 kB peak matches the
          paper's 1.7 kreq/s (Section VI-B) *)
}

val default_config : f:int -> config

type faults = {
  mutable track_required : bool;
      (** malicious primary shadows the requirement (Figure 2 attack) *)
  mutable attack_margin : float;
      (** stay this factor above the requirement (default 1.10) *)
}

type t

val create :
  Engine.t -> msg Bftnet.Network.t -> config -> id:int -> service:Service.t -> t

val start : t -> unit
val id : t -> int
val faults : t -> faults
val replica : t -> Pbftcore.Replica.t
val policy : t -> Policy.t
val executed_count : t -> int
val executed_counter : t -> Bftmetrics.Throughput.t
val execution_digest : t -> string
val view_changes : t -> int

val set_clock_factor : t -> float -> unit
(** Skew the node's local clock (monitoring and batch timers). *)

val set_cpu_factor : t -> float -> unit
(** Run the node's module threads at the given speed multiple. *)
