let block_size = 64

let normalize_key key =
  let key =
    if String.length key > block_size then Sha256.digest_string key else key
  in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\000'

let xor_pad key byte =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor byte))

let mac ~key msg =
  let key = normalize_key key in
  let ipad = xor_pad key 0x36 and opad = xor_pad key 0x5c in
  Sha256.digest_string (opad ^ Sha256.digest_string (ipad ^ msg))

let mac_truncated ~key ~len msg =
  let full = mac ~key msg in
  assert (len > 0 && len <= String.length full);
  String.sub full 0 len

let verify ~key ~tag msg =
  let expected = mac_truncated ~key ~len:(String.length tag) msg in
  String.equal expected tag
