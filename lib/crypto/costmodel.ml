module Time = Dessim.Time

type t = {
  mac_base : Time.t;
  mac_per_byte : float;
  sig_sign_base : Time.t;
  sig_verify_base : Time.t;
  digest_base : Time.t;
  digest_per_byte : float;
  handling : Time.t;
  touch_per_byte : float;
}

(* Calibration targets (paper, Section VI-B, f = 1):
   - RBFT peak ~35 kreq/s at 8 B: the Verification thread performs one
     MAC verify + one signature verify per request; 1 us + 25 us plus
     handling gives ~28 us/request.
   - signatures "an order of magnitude more costly than MACs".
   - at 4 kB the per-byte costs dominate and push RBFT towards the
     ~5 kreq/s the paper reports. *)
let default =
  {
    mac_base = Time.ns 1_000;
    mac_per_byte = 0.4;
    sig_sign_base = Time.us 50;
    sig_verify_base = Time.us 25;
    digest_base = Time.ns 300;
    digest_per_byte = 1.5;
    handling = Time.ns 2_000;
    touch_per_byte = 8.0;
  }

let per_byte rate bytes = Time.ns (int_of_float (rate *. float_of_int bytes))

(* Every public costing function doubles as an instrumentation point:
   the cost model sits on the exact code paths where a real replica
   would run the primitive, so op/byte counters here give the per-run
   cryptographic workload (the paper's claimed bottleneck) for free. *)
let op_metrics name =
  let module Registry = Bftmetrics.Registry in
  ( Registry.counter Registry.default "bft_crypto_ops_total"
      ~help:"Cryptographic cost-model operations charged"
      ~labels:[ ("op", name) ],
    Registry.counter Registry.default "bft_crypto_bytes_total"
      ~help:"Bytes processed by cryptographic operations"
      ~labels:[ ("op", name) ] )

let m_mac_gen = op_metrics "mac_gen"
let m_mac_verify = op_metrics "mac_verify"
let m_authenticator = op_metrics "authenticator"
let m_digest = op_metrics "digest"
let m_sig_sign = op_metrics "sig_sign"
let m_sig_verify = op_metrics "sig_verify"

let tally (ops, byts) bytes =
  if Bftmetrics.Registry.active () then begin
    Bftmetrics.Registry.Counter.inc ops;
    Bftmetrics.Registry.Counter.add byts bytes
  end

(* Uncounted internals, so composite operations (a signature digests
   then signs) charge exactly one op each. *)
let mac_cost t ~bytes = Time.add t.mac_base (per_byte t.mac_per_byte bytes)
let digest_cost t ~bytes =
  Time.add t.digest_base (per_byte t.digest_per_byte bytes)

let mac_gen t ~bytes =
  tally m_mac_gen bytes;
  mac_cost t ~bytes

let mac_verify t ~bytes =
  tally m_mac_verify bytes;
  mac_cost t ~bytes

let authenticator_gen t ~bytes ~count =
  tally m_authenticator bytes;
  Time.add (per_byte t.mac_per_byte bytes)
    (Time.ns (count * t.mac_base))

let digest t ~bytes =
  tally m_digest bytes;
  digest_cost t ~bytes

let sig_sign t ~bytes =
  tally m_sig_sign bytes;
  Time.add (digest_cost t ~bytes) t.sig_sign_base

let sig_verify t ~bytes =
  tally m_sig_verify bytes;
  Time.add (digest_cost t ~bytes) t.sig_verify_base

let recv t ~bytes = Time.add t.handling (per_byte t.touch_per_byte bytes)
let send t ~bytes = Time.add t.handling (per_byte t.touch_per_byte bytes)

let scale t k =
  {
    mac_base = Time.mul_f t.mac_base k;
    mac_per_byte = t.mac_per_byte *. k;
    sig_sign_base = Time.mul_f t.sig_sign_base k;
    sig_verify_base = Time.mul_f t.sig_verify_base k;
    digest_base = Time.mul_f t.digest_base k;
    digest_per_byte = t.digest_per_byte *. k;
    handling = Time.mul_f t.handling k;
    touch_per_byte = t.touch_per_byte *. k;
  }
