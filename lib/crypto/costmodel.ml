module Time = Dessim.Time

type t = {
  mac_base : Time.t;
  mac_per_byte : float;
  sig_sign_base : Time.t;
  sig_verify_base : Time.t;
  digest_base : Time.t;
  digest_per_byte : float;
  handling : Time.t;
  touch_per_byte : float;
}

(* Calibration targets (paper, Section VI-B, f = 1):
   - RBFT peak ~35 kreq/s at 8 B: the Verification thread performs one
     MAC verify + one signature verify per request; 1 us + 25 us plus
     handling gives ~28 us/request.
   - signatures "an order of magnitude more costly than MACs".
   - at 4 kB the per-byte costs dominate and push RBFT towards the
     ~5 kreq/s the paper reports. *)
let default =
  {
    mac_base = Time.ns 1_000;
    mac_per_byte = 0.4;
    sig_sign_base = Time.us 50;
    sig_verify_base = Time.us 25;
    digest_base = Time.ns 300;
    digest_per_byte = 1.5;
    handling = Time.ns 2_000;
    touch_per_byte = 8.0;
  }

let per_byte rate bytes = Time.ns (int_of_float (rate *. float_of_int bytes))

let mac_gen t ~bytes = Time.add t.mac_base (per_byte t.mac_per_byte bytes)
let mac_verify = mac_gen

let authenticator_gen t ~bytes ~count =
  Time.add (per_byte t.mac_per_byte bytes)
    (Time.ns (count * t.mac_base))

let digest t ~bytes = Time.add t.digest_base (per_byte t.digest_per_byte bytes)

let sig_sign t ~bytes = Time.add (digest t ~bytes) t.sig_sign_base
let sig_verify t ~bytes = Time.add (digest t ~bytes) t.sig_verify_base

let recv t ~bytes = Time.add t.handling (per_byte t.touch_per_byte bytes)
let send t ~bytes = Time.add t.handling (per_byte t.touch_per_byte bytes)

let scale t k =
  {
    mac_base = Time.mul_f t.mac_base k;
    mac_per_byte = t.mac_per_byte *. k;
    sig_sign_base = Time.mul_f t.sig_sign_base k;
    sig_verify_base = Time.mul_f t.sig_verify_base k;
    digest_base = Time.mul_f t.digest_base k;
    digest_per_byte = t.digest_per_byte *. k;
    handling = Time.mul_f t.handling k;
    touch_per_byte = t.touch_per_byte *. k;
  }
