(** HMAC-SHA-256 (RFC 2104), implemented from scratch and validated
    against RFC 4231 test vectors. Used both as the real MAC for the
    library's non-simulated API and as the key-derivation primitive of
    {!Keys}. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag of [msg]. *)

val mac_truncated : key:string -> len:int -> string -> string
(** [mac_truncated ~key ~len msg] is the first [len] bytes of the tag,
    matching the short UMAC-style tags BFT implementations put on the
    wire. *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-content comparison of a (possibly truncated) tag. *)
