(** Key management for the replicated system.

    A {!t} plays the role of the deployment-time key distribution the
    paper assumes: every pair of principals shares a symmetric MAC key,
    and every principal owns a signing key whose public part is known
    to everyone. All keys are derived deterministically from a master
    secret with HMAC-SHA-256, so a registry is reproducible from its
    seed. *)

type t

val create : master:string -> t
(** [create ~master] derives all keys from the master secret. *)

val pair_key : t -> Principal.t -> Principal.t -> string
(** [pair_key t a b] is the symmetric key shared by [a] and [b]
    (symmetric in its arguments). Keys are cached after the first
    derivation. *)

val signing_key : t -> Principal.t -> string
(** The private signing key of a principal. In this reproduction,
    signatures are keyed digests; unforgeability holds because only
    the simulator's representation of a principal ever requests its
    own signing key. *)

val sign : t -> signer:Principal.t -> string -> string
(** [sign t ~signer msg] is a 64-byte "signature" of [msg]. *)

val verify_signature : t -> signer:Principal.t -> signature:string -> string -> bool

val signature_size : int
(** Bytes a signature occupies on the wire (64, matching 512-bit RSA
    moduli magnitudes used by the era's BFT systems). *)

val mac_tag_size : int
(** Bytes a wire MAC tag occupies (8, UMAC-style). *)

val mac : t -> src:Principal.t -> dst:Principal.t -> string -> string
(** Short wire MAC from [src] to [dst]. *)

val verify_mac : t -> src:Principal.t -> dst:Principal.t -> tag:string -> string -> bool

val authenticator : t -> src:Principal.t -> all:Principal.t list -> string -> (Principal.t * string) list
(** MAC authenticator: one tag per destination principal, as in the
    paper's [⟨m⟩μ⃗i] notation. *)
