(** SHA-256 (FIPS 180-4), implemented from scratch.

    The simulation only needs digests for request identifiers and MACs,
    but we implement the real function (validated against the standard
    test vectors) so that the library is usable outside the simulator
    and so that digests have realistic collision behaviour. *)

type t = string
(** A 32-byte binary digest. *)

val digest_bytes : bytes -> t
val digest_string : string -> t

val digest_substring : string -> pos:int -> len:int -> t

val to_hex : t -> string
(** Lowercase hexadecimal rendering (64 characters). *)

val size : int
(** Digest size in bytes (32). *)
