(** Virtual-time cost model for cryptography and message handling.

    The paper (Section V) states that the bottleneck of BFT protocols
    is cryptography, not network usage, and that signatures are an
    order of magnitude more expensive than MACs. The simulator charges
    these costs to the CPU thread performing each operation; the
    constants below are calibrated so that fault-free peak throughputs
    land in the range reported in Section VI-B (see EXPERIMENTS.md for
    the calibration notes).

    All costs are in virtual nanoseconds ({!Dessim.Time.t}). *)

type t = {
  mac_base : Dessim.Time.t;  (** fixed cost of one MAC generate/verify *)
  mac_per_byte : float;  (** ns per authenticated byte *)
  sig_sign_base : Dessim.Time.t;  (** fixed cost of signing a digest *)
  sig_verify_base : Dessim.Time.t;  (** fixed cost of verifying a signature *)
  digest_base : Dessim.Time.t;  (** fixed cost of a SHA-256 call *)
  digest_per_byte : float;  (** ns per hashed byte *)
  handling : Dessim.Time.t;  (** per-message fixed send/receive overhead *)
  touch_per_byte : float;  (** ns per byte of payload copied through a stage *)
}

val default : t
(** Calibration used by all experiments unless overridden. *)

val mac_gen : t -> bytes:int -> Dessim.Time.t
(** Cost of generating one MAC over [bytes]. *)

val mac_verify : t -> bytes:int -> Dessim.Time.t

val authenticator_gen : t -> bytes:int -> count:int -> Dessim.Time.t
(** Cost of a MAC authenticator: one pass over the message plus
    [count] keyed finalizations. *)

val digest : t -> bytes:int -> Dessim.Time.t

val sig_sign : t -> bytes:int -> Dessim.Time.t
(** Digest the message, then sign the digest. *)

val sig_verify : t -> bytes:int -> Dessim.Time.t

val recv : t -> bytes:int -> Dessim.Time.t
(** Per-message receive overhead: fixed handling plus byte touching. *)

val send : t -> bytes:int -> Dessim.Time.t
(** Per-message send overhead. *)

val scale : t -> float -> t
(** [scale t k] multiplies every constant by [k]; used by ablation
    benchmarks to explore calibration sensitivity. *)
