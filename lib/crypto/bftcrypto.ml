(** Cryptographic substrate: real SHA-256/HMAC primitives, key
    management for nodes and clients, and the virtual-time cost model
    the simulator charges for each operation. *)

module Sha256 = Sha256
module Hmac = Hmac
module Principal = Principal
module Keys = Keys
module Costmodel = Costmodel
