(** Identities in the system: nodes (the 3f+1 physical machines) and
    clients. Every key, MAC and signature is attached to a principal. *)

type t =
  | Node of int  (** Node [i], [0 <= i < n]. *)
  | Client of int  (** Client [c]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val node : int -> t
val client : int -> t

val is_node : t -> bool
val is_client : t -> bool

val index : t -> int
(** The integer identity within its class. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encode : t -> string
(** Stable binary rendering, used in key-derivation labels and wire
    formats. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
