type t = {
  master : string;
  pair_cache : (Principal.t * Principal.t, string) Hashtbl.t;
  sign_cache : (Principal.t, string) Hashtbl.t;
}

let signature_size = 64
let mac_tag_size = 8

let create ~master = { master; pair_cache = Hashtbl.create 64; sign_cache = Hashtbl.create 64 }

let ordered_pair a b = if Principal.compare a b <= 0 then (a, b) else (b, a)

let pair_key t a b =
  let key = ordered_pair a b in
  match Hashtbl.find_opt t.pair_cache key with
  | Some k -> k
  | None ->
    let a, b = key in
    let derived =
      Hmac.mac ~key:t.master ("pair:" ^ Principal.encode a ^ ":" ^ Principal.encode b)
    in
    Hashtbl.add t.pair_cache key derived;
    derived

let signing_key t p =
  match Hashtbl.find_opt t.sign_cache p with
  | Some k -> k
  | None ->
    let derived = Hmac.mac ~key:t.master ("sign:" ^ Principal.encode p) in
    Hashtbl.add t.sign_cache p derived;
    derived

let sign t ~signer msg =
  let key = signing_key t signer in
  (* Two chained HMACs produce 64 bytes, the wire size we model. *)
  let first = Hmac.mac ~key msg in
  first ^ Hmac.mac ~key first

let verify_signature t ~signer ~signature msg =
  String.equal signature (sign t ~signer msg)

let mac t ~src ~dst msg =
  Hmac.mac_truncated ~key:(pair_key t src dst) ~len:mac_tag_size msg

let verify_mac t ~src ~dst ~tag msg =
  Hmac.verify ~key:(pair_key t src dst) ~tag msg

let authenticator t ~src ~all msg =
  List.map (fun dst -> (dst, mac t ~src ~dst msg)) all
