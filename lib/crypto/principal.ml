type t = Node of int | Client of int

let compare a b =
  match (a, b) with
  | Node x, Node y -> Int.compare x y
  | Client x, Client y -> Int.compare x y
  | Node _, Client _ -> -1
  | Client _, Node _ -> 1

let equal a b = compare a b = 0

let hash = function Node i -> (i * 2) + 1 | Client i -> i * 2

let node i = Node i
let client i = Client i

let is_node = function Node _ -> true | Client _ -> false
let is_client = function Client _ -> true | Node _ -> false

let index = function Node i -> i | Client i -> i

let pp fmt = function
  | Node i -> Format.fprintf fmt "node%d" i
  | Client i -> Format.fprintf fmt "client%d" i

let to_string t = Format.asprintf "%a" pp t

let encode = function
  | Node i -> Printf.sprintf "N%08x" i
  | Client i -> Printf.sprintf "C%08x" i

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
