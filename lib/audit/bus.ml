(** Global structured-event bus.

    Instrumented code guards every emission site with {!active} so the
    disabled path costs one load and one branch — no event record is
    allocated, no closure runs:

    {[
      if Bftaudit.Bus.active () then
        Bftaudit.Bus.emit { time; node; instance; kind = ... }
    ]}

    Sinks (the auditor, trace captures, ad-hoc listeners) subscribe
    and unsubscribe dynamically; events are delivered to every sink in
    subscription order.  While at least one sink is subscribed, the
    legacy [Dessim.Trace] string stream is bridged onto the bus as
    {!Event.Log} events, so old-style [Trace.emitf] call sites surface
    in structured traces too. *)

type token = int

let sinks : (token * (Event.t -> unit)) list ref = ref []
let next_token = ref 0

(* Fast-path flag read by [active]; kept in sync with [sinks]. *)
let enabled = ref false

let active () = !enabled

let emit ev = List.iter (fun (_, f) -> f ev) !sinks

(* Bridge: while the bus is live, legacy string traces become Log
   events. The node/instance of a free-form string trace are unknown,
   hence -1. *)
let bridge (e : Dessim.Trace.event) =
  emit
    {
      Event.time = e.Dessim.Trace.time;
      node = -1;
      instance = -1;
      kind =
        Log
          {
            level = Dessim.Trace.level_name e.Dessim.Trace.level;
            component = e.Dessim.Trace.component;
            message = e.Dessim.Trace.message;
          };
    }

let sync () =
  let live = !sinks <> [] in
  enabled := live;
  Dessim.Trace.set_forward (if live then Some bridge else None)

let subscribe f =
  incr next_token;
  let tok = !next_token in
  sinks := !sinks @ [ (tok, f) ];
  sync ();
  tok

let unsubscribe tok =
  sinks := List.filter (fun (t, _) -> t <> tok) !sinks;
  sync ()

(** Convenience for sites that already checked {!active}. *)
let emit_at time ~node ~instance kind =
  emit { Event.time; node; instance; kind }
