(** Derives metric families from the {!Bus} event stream.

    A regular bus sink that turns structured audit events into
    registry counters without dedicated instrumentation sites:

    - [bft_audit_events_total{kind}] — every event, by kind name;
    - [bft_net_drops_total{reason}] — [Net_dropped] events, by reason;
    - [bft_monitor_suspicious_total{node}] — suspicious
      [Monitor_verdict]s, by monitoring node.

    Counters are registered lazily the first time a label value is
    seen.  Like every bus sink, attaching the bridge flips
    [Bus.active ()] on, so it has a cost — attach it only for
    observed runs. *)

type t

val attach : ?registry:Bftmetrics.Registry.t -> unit -> t
(** Subscribe to the bus, registering counters in [registry]
    (default: {!Bftmetrics.Registry.default}). *)

val detach : t -> unit
(** Unsubscribe; idempotent. *)
