(** In-memory trace capture with a chained per-run SHA-256 digest.

    The digest is folded over each event's canonical JSON line as it
    arrives, so two runs of the same binary with the same seed produce
    byte-identical digests — the determinism regression check — while
    the full event list supports JSONL and Chrome [trace_event]
    export after the run. *)

type t

val create : unit -> t
(** Standalone capture (not subscribed); feed it with {!record}. *)

val record : t -> Event.t -> unit

val attach : unit -> t
(** {!create} + subscribe to the bus. *)

val detach : t -> unit
(** Unsubscribe from the bus; idempotent. *)

val count : t -> int
val events : t -> Event.t list
(** Captured events, oldest first. *)

val iter_events : t -> (Event.t -> unit) -> unit

val digest : t -> string
(** Hex SHA-256 chained over every event's canonical JSON. *)

val write_jsonl : t -> string -> unit
(** One canonical JSON object per line, in event order. *)

val write_chrome_trace : t -> string -> unit
(** Chrome about:tracing / Perfetto JSON; lanes are grouped with
    pid = node and tid = protocol instance. *)
