(** Typed structured events for the audit bus.

    Every event carries the emitting node, the protocol instance it
    belongs to (RBFT runs f+1 parallel instances; single-instance
    protocols use instance 0; [-1] means "not instance-scoped"), and
    the virtual timestamp.  Digests are raw [Bftcrypto.Sha256] bytes;
    they are hex-encoded only at serialisation time. *)

open Dessim

type kind =
  | Request_received of { client : int; rid : int; size : int }
  | Request_propagated of { client : int; rid : int }
  | Request_dispatched of { client : int; rid : int }
  | Pre_prepare_sent of { view : int; seq : int; count : int; digest : string }
  | Prepare_sent of { view : int; seq : int; digest : string }
  | Commit_sent of { view : int; seq : int; digest : string }
  | Ordered of { seq : int; count : int; digest : string }
  | Executed of { client : int; rid : int; digest : string }
  | Checkpoint_sent of { seq : int; digest : string }
  | Checkpoint_stable of { seq : int; digest : string }
  | View_change_sent of { view : int }
  | View_entered of { view : int; primary : int }
  | Accusation of { seq : int }
  | Instance_change_vote of { cpi : int }
  | Instance_changed of { cpi : int; recovery : bool }
  | Monitor_verdict of {
      master_rate : float;
      backup_rate : float;
      suspicious : bool;
    }
  | Lambda_exceeded of { client : int; latency : Time.t }
  | Omega_exceeded of { client : int }
  | Seq_stall of { waiting_on : int; age : Time.t; pending : int }
      (** concurrent (bftrcc) ordering: head-of-line state of the merge
          sequencer, sampled every monitoring period. [waiting_on] is
          the instance whose next batch the round-robin merge needs
          ([-1] when not stalled), [age] how long it has been missing,
          [pending] committed batches queued behind it. *)
  | Degrade_changed of { instance : int; active : bool }
      (** concurrent ordering: the degrade path for [instance]'s
          partition toggled — [active] means every primary now also
          proposes that partition's requests (classic redundant
          fallback) until the new master is stable. *)
  | Nic_closed of { peer : int; until : Time.t }
  | Blacklisted of { client : int }
  | Net_dropped of { src : string; reason : string }
  | Log of { level : string; component : string; message : string }

type t = { time : Time.t; node : int; instance : int; kind : kind }

let kind_name = function
  | Request_received _ -> "request-received"
  | Request_propagated _ -> "request-propagated"
  | Request_dispatched _ -> "request-dispatched"
  | Pre_prepare_sent _ -> "pre-prepare"
  | Prepare_sent _ -> "prepare"
  | Commit_sent _ -> "commit"
  | Ordered _ -> "ordered"
  | Executed _ -> "executed"
  | Checkpoint_sent _ -> "checkpoint"
  | Checkpoint_stable _ -> "checkpoint-stable"
  | View_change_sent _ -> "view-change"
  | View_entered _ -> "view-entered"
  | Accusation _ -> "accusation"
  | Instance_change_vote _ -> "instance-change-vote"
  | Instance_changed _ -> "instance-changed"
  | Monitor_verdict _ -> "monitor-verdict"
  | Lambda_exceeded _ -> "lambda-exceeded"
  | Omega_exceeded _ -> "omega-exceeded"
  | Seq_stall _ -> "seq-stall"
  | Degrade_changed _ -> "degrade"
  | Nic_closed _ -> "nic-closed"
  | Blacklisted _ -> "blacklisted"
  | Net_dropped _ -> "net-dropped"
  | Log _ -> "log"

let hex s = Bftcrypto.Sha256.to_hex s

(* Digests are 32 raw bytes; eight hex chars are plenty to tell
   batches apart in human-facing output. *)
let short_digest s =
  let h = hex s in
  if String.length h > 8 then String.sub h 0 8 else h

let pp_kind ppf = function
  | Request_received { client; rid; size } ->
    Format.fprintf ppf "request-received c%d#%d (%dB)" client rid size
  | Request_propagated { client; rid } ->
    Format.fprintf ppf "request-propagated c%d#%d" client rid
  | Request_dispatched { client; rid } ->
    Format.fprintf ppf "request-dispatched c%d#%d" client rid
  | Pre_prepare_sent { view; seq; count; digest } ->
    Format.fprintf ppf "pre-prepare v%d seq=%d count=%d %s" view seq count
      (short_digest digest)
  | Prepare_sent { view; seq; digest } ->
    Format.fprintf ppf "prepare v%d seq=%d %s" view seq (short_digest digest)
  | Commit_sent { view; seq; digest } ->
    Format.fprintf ppf "commit v%d seq=%d %s" view seq (short_digest digest)
  | Ordered { seq; count; digest } ->
    Format.fprintf ppf "ordered seq=%d count=%d %s" seq count
      (short_digest digest)
  | Executed { client; rid; digest } ->
    Format.fprintf ppf "executed c%d#%d %s" client rid (short_digest digest)
  | Checkpoint_sent { seq; digest } ->
    Format.fprintf ppf "checkpoint seq=%d %s" seq (short_digest digest)
  | Checkpoint_stable { seq; digest } ->
    Format.fprintf ppf "checkpoint-stable seq=%d %s" seq (short_digest digest)
  | View_change_sent { view } -> Format.fprintf ppf "view-change to v%d" view
  | View_entered { view; primary } ->
    Format.fprintf ppf "view-entered v%d primary=%d" view primary
  | Accusation { seq } -> Format.fprintf ppf "accusation seq=%d" seq
  | Instance_change_vote { cpi } ->
    Format.fprintf ppf "instance-change-vote cpi=%d" cpi
  | Instance_changed { cpi; recovery } ->
    Format.fprintf ppf "instance-changed cpi=%d%s" cpi
      (if recovery then " (recovery)" else "")
  | Monitor_verdict { master_rate; backup_rate; suspicious } ->
    Format.fprintf ppf "monitor-verdict master=%.1f backup=%.1f%s" master_rate
      backup_rate
      (if suspicious then " SUSPICIOUS" else "")
  | Lambda_exceeded { client; latency } ->
    Format.fprintf ppf "lambda-exceeded c%d latency=%a" client Time.pp latency
  | Omega_exceeded { client } -> Format.fprintf ppf "omega-exceeded c%d" client
  | Seq_stall { waiting_on; age; pending } ->
    if waiting_on < 0 then Format.fprintf ppf "seq-stall none"
    else
      Format.fprintf ppf "seq-stall waiting-on=i%d age=%a pending=%d"
        waiting_on Time.pp age pending
  | Degrade_changed { instance; active } ->
    Format.fprintf ppf "degrade i%d %s" instance
      (if active then "active" else "cleared")
  | Nic_closed { peer; until } ->
    Format.fprintf ppf "nic-closed peer=%d until=%a" peer Time.pp until
  | Blacklisted { client } -> Format.fprintf ppf "blacklisted c%d" client
  | Net_dropped { src; reason } ->
    Format.fprintf ppf "net-dropped from %s (%s)" src reason
  | Log { level; component; message } ->
    Format.fprintf ppf "log[%s] %s: %s" level component message

let pp ppf t =
  Format.fprintf ppf "[%a] n%d/i%d %a" Time.pp t.time t.node t.instance pp_kind
    t.kind

let to_string t = Format.asprintf "%a" pp t

(* --- JSON serialisation ------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Event payload as JSON object fields, without the enclosing braces,
   so both the JSONL and the Chrome exporters can reuse it. *)
let args_json kind =
  match kind with
  | Request_received { client; rid; size } ->
    Printf.sprintf {|"client":%d,"rid":%d,"size":%d|} client rid size
  | Request_propagated { client; rid } | Request_dispatched { client; rid } ->
    Printf.sprintf {|"client":%d,"rid":%d|} client rid
  | Pre_prepare_sent { view; seq; count; digest } ->
    Printf.sprintf {|"view":%d,"seq":%d,"count":%d,"digest":"%s"|} view seq
      count (hex digest)
  | Prepare_sent { view; seq; digest } | Commit_sent { view; seq; digest } ->
    Printf.sprintf {|"view":%d,"seq":%d,"digest":"%s"|} view seq (hex digest)
  | Ordered { seq; count; digest } ->
    Printf.sprintf {|"seq":%d,"count":%d,"digest":"%s"|} seq count (hex digest)
  | Executed { client; rid; digest } ->
    Printf.sprintf {|"client":%d,"rid":%d,"digest":"%s"|} client rid
      (hex digest)
  | Checkpoint_sent { seq; digest } | Checkpoint_stable { seq; digest } ->
    Printf.sprintf {|"seq":%d,"digest":"%s"|} seq (hex digest)
  | View_change_sent { view } -> Printf.sprintf {|"view":%d|} view
  | View_entered { view; primary } ->
    Printf.sprintf {|"view":%d,"primary":%d|} view primary
  | Accusation { seq } -> Printf.sprintf {|"seq":%d|} seq
  | Instance_change_vote { cpi } -> Printf.sprintf {|"cpi":%d|} cpi
  | Instance_changed { cpi; recovery } ->
    Printf.sprintf {|"cpi":%d,"recovery":%b|} cpi recovery
  | Monitor_verdict { master_rate; backup_rate; suspicious } ->
    Printf.sprintf {|"master_rate":%.6f,"backup_rate":%.6f,"suspicious":%b|}
      master_rate backup_rate suspicious
  | Lambda_exceeded { client; latency } ->
    Printf.sprintf {|"client":%d,"latency_ns":%d|} client (latency : Time.t)
  | Omega_exceeded { client } -> Printf.sprintf {|"client":%d|} client
  | Seq_stall { waiting_on; age; pending } ->
    Printf.sprintf {|"waiting_on":%d,"age_ns":%d,"pending":%d|} waiting_on
      (age : Time.t) pending
  | Degrade_changed { instance; active } ->
    Printf.sprintf {|"instance":%d,"active":%b|} instance active
  | Nic_closed { peer; until } ->
    Printf.sprintf {|"peer":%d,"until_ns":%d|} peer (until : Time.t)
  | Blacklisted { client } -> Printf.sprintf {|"client":%d|} client
  | Net_dropped { src; reason } ->
    Printf.sprintf {|"src":"%s","reason":"%s"|} (json_escape src)
      (json_escape reason)
  | Log { level; component; message } ->
    Printf.sprintf {|"level":"%s","component":"%s","message":"%s"|}
      (json_escape level) (json_escape component) (json_escape message)

(* Canonical one-line serialisation: used verbatim for JSONL export
   and as the input of the chained per-run trace digest, so it must
   stay deterministic for a given event. *)
let to_json t =
  Printf.sprintf {|{"ts":%d,"node":%d,"instance":%d,"kind":"%s",%s}|}
    (t.time : Time.t) t.node t.instance (kind_name t.kind) (args_json t.kind)
