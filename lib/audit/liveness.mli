(** Instance-change liveness monitor.

    The safety auditor ({!Auditor}) checks what must {e never} happen;
    this monitor checks what must {e eventually} happen on the
    instance-change path: a triggered instance change completes, and it
    completes everywhere. It subscribes to the bus, records per node
    the highest cpi voted for ([INSTANCE-CHANGE] sent) and the highest
    cpi completed, and is interrogated once the system has quiesced —
    liveness is only meaningful at a point where no message is still in
    flight, which the model checker guarantees by draining every
    schedule before calling {!check}.

    Scope: designed for crash-only fault placements (the model
    checker's grammar). Nodes crashed for the whole run are excluded
    via the [correct] argument; the monitor does not model
    retransmission, so healing faults would need a weaker check. *)

type problem = { invariant : string; detail : string }
(** [invariant] is one of ["instance-change-completion"] (a change
    completed on one correct node but not all) and
    ["instance-change-progress"] (a quorum of correct votes exists but
    the change never completed somewhere). *)

type t

val create : unit -> t
(** Standalone monitor (not subscribed); feed it with {!on_event}. *)

val attach : unit -> t
(** {!create} + subscribe to the bus. *)

val detach : t -> unit
(** Unsubscribe from the bus; idempotent. *)

val on_event : t -> Event.t -> unit

val check : t -> quorum:int -> correct:int list -> problem list
(** [check t ~quorum ~correct] evaluates both liveness rules at
    quiescence over the given correct (non-crashed) node ids and the
    vote quorum (2f+1 in the unmutated protocol). Empty list = live. *)

val max_voted : t -> int -> int
(** Highest cpi the node voted for; [-1] if it never voted. *)

val max_changed : t -> int -> int
(** Highest cpi the node completed a change for; [-1] if none. *)

val vote_events : t -> int

val change_events : t -> int

val pp_problem : Format.formatter -> problem -> unit
