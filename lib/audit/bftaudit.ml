(** Structured observability for the BFT simulations.

    {!Bus} is a typed, zero-cost-when-disabled event bus fed by
    instrumentation in every protocol layer (request flow, the
    three-phase ordering pipeline per instance, view and instance
    changes, monitoring verdicts, NIC/blacklist actions, checkpoints,
    network drops).  {!Auditor} subscribes to it and checks global
    safety invariants online; {!Capture} records events for JSONL /
    Chrome trace export and computes a deterministic per-run SHA-256
    trace digest; {!Metrics_bridge} derives {!Bftmetrics.Registry}
    counters from the same stream. *)

module Event = Event
module Bus = Bus
module Auditor = Auditor
module Liveness = Liveness
module Capture = Capture
module Metrics_bridge = Metrics_bridge
