(** Online safety auditor.

    Subscribes to {!Bus} and checks global safety invariants while a
    simulation runs, across every node and protocol instance:
    agreement, no double execution, prepare quorum, checkpoint
    consistency, and instance-change quorum (see the implementation
    header for precise definitions).

    Nodes under adversarial control are excluded from the checks'
    conclusions (their votes still count, as they do in the real
    protocol).  Attack installers register them with
    {!declare_faulty}; violations raise {!Violation} with a readable
    report that includes the most recent bus events for context. *)

open Dessim

exception Violation of string

type violation = { time : Time.t; invariant : string; detail : string }

val declare_faulty : int list -> unit
(** Register Byzantine node ids in a global set consulted by every
    live auditor (attack installers run after the auditor attaches). *)

val reset_declared : unit -> unit
(** Clear the global faulty set; call between runs. *)

val set_violation_hook : (violation -> unit) option -> unit
(** Install an observer called for every violation any live auditor
    records, before any raise. Single global slot (the doctor's
    auditor-violation trigger); installers save {!violation_hook} and
    restore it on detach. *)

val violation_hook : unit -> (violation -> unit) option
(** The currently installed observer. *)

type t

val create :
  ?faulty:int list -> ?raise_on_violation:bool -> n:int -> f:int -> unit -> t
(** Standalone auditor (not subscribed); feed it with {!on_event}.
    [raise_on_violation] defaults to [true]; when [false], violations
    are only recorded and available via {!violations}. *)

val attach :
  ?faulty:int list -> ?raise_on_violation:bool -> n:int -> f:int -> unit -> t
(** {!create} + subscribe to the bus. *)

val detach : t -> unit
(** Unsubscribe from the bus; idempotent. *)

val on_event : t -> Event.t -> unit
(** Check one event (called by the bus subscription). *)

val events_checked : t -> int
val violations : t -> violation list
(** Recorded violations, oldest first. *)

val invariant_digest : violation list -> string
(** Hex SHA-256 over the sorted set of distinct violated invariant
    names — a run-independent identity for "which bug fired". The
    model checker uses it to confirm that a shrunk counterexample
    still reproduces the original violation. *)

val recent_events : t -> Event.t list
(** The last few bus events seen, oldest first (context ring). *)

val report : t -> violation -> string
(** Multi-line human-readable report with recent-event context. *)

val pp_violation : Format.formatter -> violation -> unit
