(** In-memory trace capture with a chained per-run SHA-256 digest.

    The digest is folded over each event's canonical JSON line as it
    arrives, so two runs of the same binary with the same seed produce
    byte-identical digests — the determinism regression check — while
    the full event list supports JSONL and Chrome [trace_event]
    export after the run. *)

type t = {
  mutable events : Event.t list; (* newest first *)
  mutable count : int;
  mutable chain : string; (* raw 32-byte running digest *)
  mutable token : Bus.token option;
}

let create () =
  {
    events = [];
    count = 0;
    chain = Bftcrypto.Sha256.digest_string "bftaudit-trace-v1";
    token = None;
  }

let record t ev =
  t.events <- ev :: t.events;
  t.count <- t.count + 1;
  t.chain <- Bftcrypto.Sha256.digest_string (t.chain ^ Event.to_json ev)

(** Create a capture and subscribe it to the bus. *)
let attach () =
  let t = create () in
  t.token <- Some (Bus.subscribe (record t));
  t

let detach t =
  match t.token with
  | Some tok ->
    Bus.unsubscribe tok;
    t.token <- None
  | None -> ()

let count t = t.count
let events t = List.rev t.events
let digest t = Bftcrypto.Sha256.to_hex t.chain

let iter_events t f = List.iter f (events t)

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      iter_events t (fun ev ->
          output_string oc (Event.to_json ev);
          output_char oc '\n'))

(* Chrome's about:tracing / Perfetto "trace event" JSON: each bus
   event becomes an instant event with pid = node and tid = instance,
   so the timeline groups lanes per node and per protocol instance. *)
let write_chrome_trace t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc {|{"displayTimeUnit":"ms","traceEvents":[|};
      let first = ref true in
      iter_events t (fun ev ->
          if !first then first := false else output_char oc ',';
          Printf.fprintf oc
            {|{"name":"%s","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{%s}}|}
            (Event.kind_name ev.Event.kind)
            (Dessim.Time.to_us_f ev.Event.time)
            ev.Event.node ev.Event.instance
            (Event.args_json ev.Event.kind));
      output_string oc "]}")
