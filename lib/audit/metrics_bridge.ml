(* Bus -> registry bridge: derives metric families from the structured
   audit event stream instead of dedicated instrumentation sites.

   Anything already on the bus (event kinds, monitoring verdicts,
   network drops with reasons) can become a metric without touching
   protocol code; counters are registered lazily per label value the
   first time an event of that shape is seen.  The bridge is a regular
   bus sink, so it only costs anything while attached. *)

module Registry = Bftmetrics.Registry

type t = {
  registry : Registry.t;
  mutable token : Bus.token option;
  (* kind-name -> counter, filled lazily as kinds are first seen. *)
  kind_counters : (string, Registry.Counter.t) Hashtbl.t;
  drop_counters : (string, Registry.Counter.t) Hashtbl.t;
  suspicious_counters : (int, Registry.Counter.t) Hashtbl.t;
}

let kind_counter t kind =
  match Hashtbl.find_opt t.kind_counters kind with
  | Some c -> c
  | None ->
    let c =
      Registry.counter t.registry "bft_audit_events_total"
        ~help:"Structured audit-bus events seen by the metrics bridge"
        ~labels:[ ("kind", kind) ]
    in
    Hashtbl.replace t.kind_counters kind c;
    c

let drop_counter t reason =
  match Hashtbl.find_opt t.drop_counters reason with
  | Some c -> c
  | None ->
    let c =
      Registry.counter t.registry "bft_net_drops_total"
        ~help:"Network messages dropped, by reason (from audit events)"
        ~labels:[ ("reason", reason) ]
    in
    Hashtbl.replace t.drop_counters reason c;
    c

let suspicious_counter t node =
  match Hashtbl.find_opt t.suspicious_counters node with
  | Some c -> c
  | None ->
    let c =
      Registry.counter t.registry "bft_monitor_suspicious_total"
        ~help:"Monitoring verdicts that flagged the master as suspicious"
        ~labels:[ ("node", string_of_int node) ]
    in
    Hashtbl.replace t.suspicious_counters node c;
    c

let on_event t (ev : Event.t) =
  Registry.Counter.inc (kind_counter t (Event.kind_name ev.kind));
  match ev.kind with
  | Event.Net_dropped { reason; _ } ->
    Registry.Counter.inc (drop_counter t reason)
  | Event.Monitor_verdict { suspicious = true; _ } ->
    Registry.Counter.inc (suspicious_counter t ev.node)
  | _ -> ()

let attach ?(registry = Registry.default) () =
  let t =
    {
      registry;
      token = None;
      kind_counters = Hashtbl.create 32;
      drop_counters = Hashtbl.create 8;
      suspicious_counters = Hashtbl.create 8;
    }
  in
  t.token <- Some (Bus.subscribe (on_event t));
  t

let detach t =
  match t.token with
  | Some tok ->
    Bus.unsubscribe tok;
    t.token <- None
  | None -> ()
