(** Online safety auditor.

    Subscribes to {!Bus} and checks global safety invariants while a
    simulation runs, across every node and protocol instance:

    - {b agreement}: no two correct nodes order different batch
      digests at the same (instance, sequence);
    - {b no double execution}: a correct node never executes the same
      (client, request-id) twice;
    - {b prepare quorum}: a batch ordered by a correct node was backed
      by at least 2f+1 distinct replicas sending a matching
      pre-prepare or prepare (skipped for protocols that emit no
      prepare events, e.g. Prime's pre-ordering phase);
    - {b checkpoint consistency}: correct nodes never stabilise
      different state digests at the same checkpoint sequence;
    - {b instance-change quorum}: a correct node performs a
      (non-recovery) protocol instance change only after 2f+1 distinct
      nodes voted for it.

    Nodes under adversarial control are excluded from the checks'
    conclusions (their votes still count, as they do in the real
    protocol).  Attack installers register them with
    {!declare_faulty}; violations raise {!Violation} with a readable
    report that includes the most recent bus events for context. *)

open Dessim

exception Violation of string

type violation = { time : Time.t; invariant : string; detail : string }

(* Attack installers (lib/core/attacks.ml, harness closures) run after
   the auditor is attached, so Byzantine node ids are registered in a
   global set every live auditor consults. *)
let declared_faulty : (int, unit) Hashtbl.t = Hashtbl.create 8

let declare_faulty ids = List.iter (fun i -> Hashtbl.replace declared_faulty i ()) ids
let reset_declared () = Hashtbl.reset declared_faulty

(* Observer slot for recorded violations (called before any raise).
   Bftdoctor installs its auditor-violation trigger here while
   attached; single slot, saved and restored by the installer. *)
let violation_hook_ref : (violation -> unit) option ref = ref None
let violation_hook () = !violation_hook_ref
let set_violation_hook h = violation_hook_ref := h

(* Per-(node, client) execution log. Closed-loop clients execute in
   rid order so [contig] absorbs almost everything; the [extras] table
   only holds out-of-order rids transiently. *)
type client_log = { mutable contig : int; extras : (int, unit) Hashtbl.t }

type t = {
  n : int;
  f : int;
  quorum : int;
  raise_on_violation : bool;
  faulty : (int, unit) Hashtbl.t;
  mutable violations : violation list; (* newest first *)
  recent : Event.t option array; (* context ring for reports *)
  mutable recent_pos : int;
  mutable checked : int;
  (* (instance, seq) -> node -> digests voted via pre-prepare/prepare *)
  prepares : (int * int, (int, string list) Hashtbl.t) Hashtbl.t;
  (* (instance, seq) -> first correct node's ordered digest *)
  ordered : (int * int, int * string) Hashtbl.t;
  (* (instance, seq) -> first correct node's stable checkpoint digest *)
  stable : (int * int, int * string) Hashtbl.t;
  executed : (int * int, client_log) Hashtbl.t; (* (node, client) *)
  ic_votes : (int, int) Hashtbl.t; (* node -> max cpi voted *)
  mutable token : Bus.token option;
}

let is_correct t node =
  node >= 0 && not (Hashtbl.mem t.faulty node)
  && not (Hashtbl.mem declared_faulty node)

let recent_events t =
  let len = Array.length t.recent in
  let rec collect i acc =
    if i >= len then acc
    else
      match t.recent.((t.recent_pos + i) mod len) with
      | None -> collect (i + 1) acc
      | Some e -> collect (i + 1) (e :: acc)
  in
  List.rev (collect 0 [])

let report t (v : violation) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "audit violation [%s] at %s: %s\n" v.invariant
       (Time.to_string v.time) v.detail);
  Buffer.add_string buf
    (Printf.sprintf "  (n=%d f=%d quorum=%d, %d events checked)\n" t.n t.f
       t.quorum t.checked);
  Buffer.add_string buf "  recent events:\n";
  List.iter
    (fun e -> Buffer.add_string buf ("    " ^ Event.to_string e ^ "\n"))
    (recent_events t);
  Buffer.contents buf

let violate t ~time ~invariant fmt =
  Printf.ksprintf
    (fun detail ->
      let v = { time; invariant; detail } in
      t.violations <- v :: t.violations;
      (match !violation_hook_ref with Some f -> f v | None -> ());
      if t.raise_on_violation then raise (Violation (report t v)))
    fmt

let note_prepare t ~node ~instance ~seq ~digest =
  let key = (instance, seq) in
  let votes =
    match Hashtbl.find_opt t.prepares key with
    | Some v -> v
    | None ->
      let v = Hashtbl.create 8 in
      Hashtbl.replace t.prepares key v;
      v
  in
  let ds = Option.value ~default:[] (Hashtbl.find_opt votes node) in
  if not (List.mem digest ds) then Hashtbl.replace votes node (digest :: ds)

let check_prepare_quorum t (ev : Event.t) ~seq ~digest =
  match Hashtbl.find_opt t.prepares (ev.instance, seq) with
  | None -> () (* protocol emits no prepare events for this instance *)
  | Some votes ->
    let matching =
      Hashtbl.fold
        (fun _node ds acc -> if List.mem digest ds then acc + 1 else acc)
        votes 0
    in
    if matching < t.quorum then
      violate t ~time:ev.time ~invariant:"prepare-quorum"
        "node %d ordered instance=%d seq=%d digest=%s with only %d matching \
         prepare(s), quorum is %d"
        ev.node ev.instance seq (Event.short_digest digest) matching t.quorum

let check_agreement t (ev : Event.t) ~seq ~digest =
  let key = (ev.instance, seq) in
  match Hashtbl.find_opt t.ordered key with
  | None -> Hashtbl.replace t.ordered key (ev.node, digest)
  | Some (first, d) ->
    if d <> digest then
      violate t ~time:ev.time ~invariant:"agreement"
        "instance=%d seq=%d ordered as %s by node %d but as %s by node %d"
        ev.instance seq (Event.short_digest d) first
        (Event.short_digest digest) ev.node

let check_execution t (ev : Event.t) ~client ~rid =
  let key = (ev.node, client) in
  let log =
    match Hashtbl.find_opt t.executed key with
    | Some l -> l
    | None ->
      let l = { contig = -1; extras = Hashtbl.create 4 } in
      Hashtbl.replace t.executed key l;
      l
  in
  if rid <= log.contig || Hashtbl.mem log.extras rid then
    violate t ~time:ev.time ~invariant:"double-execution"
      "node %d executed request c%d#%d twice" ev.node client rid
  else if rid = log.contig + 1 then begin
    log.contig <- rid;
    while Hashtbl.mem log.extras (log.contig + 1) do
      Hashtbl.remove log.extras (log.contig + 1);
      log.contig <- log.contig + 1
    done
  end
  else Hashtbl.replace log.extras rid ()

let check_checkpoint t (ev : Event.t) ~seq ~digest =
  let key = (ev.instance, seq) in
  match Hashtbl.find_opt t.stable key with
  | None -> Hashtbl.replace t.stable key (ev.node, digest)
  | Some (first, d) ->
    if d <> digest then
      violate t ~time:ev.time ~invariant:"checkpoint-consistency"
        "instance=%d seq=%d stabilised as %s by node %d but as %s by node %d"
        ev.instance seq (Event.short_digest d) first
        (Event.short_digest digest) ev.node

let check_instance_change t (ev : Event.t) ~cpi =
  let votes =
    Hashtbl.fold
      (fun _node max_cpi acc -> if max_cpi >= cpi then acc + 1 else acc)
      t.ic_votes 0
  in
  if votes < t.quorum then
    violate t ~time:ev.time ~invariant:"instance-change-quorum"
      "node %d changed to cpi=%d with only %d vote(s), quorum is %d" ev.node
      cpi votes t.quorum

let on_event t (ev : Event.t) =
  let len = Array.length t.recent in
  t.recent.(t.recent_pos) <- Some ev;
  t.recent_pos <- (t.recent_pos + 1) mod len;
  t.checked <- t.checked + 1;
  match ev.kind with
  | Pre_prepare_sent { seq; digest; _ } | Prepare_sent { seq; digest; _ } ->
    note_prepare t ~node:ev.node ~instance:ev.instance ~seq ~digest
  | Ordered { seq; digest; _ } ->
    if is_correct t ev.node then begin
      check_agreement t ev ~seq ~digest;
      check_prepare_quorum t ev ~seq ~digest
    end
  | Executed { client; rid; _ } ->
    if is_correct t ev.node then check_execution t ev ~client ~rid
  | Checkpoint_stable { seq; digest } ->
    if is_correct t ev.node then check_checkpoint t ev ~seq ~digest
  | Instance_change_vote { cpi } ->
    let prev = Option.value ~default:(-1) (Hashtbl.find_opt t.ic_votes ev.node) in
    if cpi > prev then Hashtbl.replace t.ic_votes ev.node cpi
  | Instance_changed { cpi; recovery } ->
    (* Recovery-protocol rotations are timer-driven, not vote-driven. *)
    if (not recovery) && is_correct t ev.node then
      check_instance_change t ev ~cpi
  | _ -> ()

let create ?(faulty = []) ?(raise_on_violation = true) ~n ~f () =
  let t =
    {
      n;
      f;
      quorum = (2 * f) + 1;
      raise_on_violation;
      faulty = Hashtbl.create 8;
      violations = [];
      recent = Array.make 16 None;
      recent_pos = 0;
      checked = 0;
      prepares = Hashtbl.create 4096;
      ordered = Hashtbl.create 4096;
      stable = Hashtbl.create 256;
      executed = Hashtbl.create 256;
      ic_votes = Hashtbl.create 8;
      token = None;
    }
  in
  List.iter (fun i -> Hashtbl.replace t.faulty i ()) faulty;
  t

(** Create an auditor and subscribe it to the bus. *)
let attach ?faulty ?raise_on_violation ~n ~f () =
  let t = create ?faulty ?raise_on_violation ~n ~f () in
  t.token <- Some (Bus.subscribe (on_event t));
  t

let detach t =
  match t.token with
  | Some tok ->
    Bus.unsubscribe tok;
    t.token <- None
  | None -> ()

let events_checked t = t.checked
let violations t = List.rev t.violations

(* Canonical digest of *which* invariants were violated, ignoring
   timestamps and per-run details: a counterexample schedule and its
   shrunk replay hit "the same bug" exactly when these digests agree. *)
let invariant_digest vs =
  List.map (fun (v : violation) -> v.invariant) vs
  |> List.sort_uniq compare
  |> String.concat "\n"
  |> Bftcrypto.Sha256.digest_string
  |> Bftcrypto.Sha256.to_hex

let pp_violation ppf (v : violation) =
  Format.fprintf ppf "[%s] at %s: %s" v.invariant (Time.to_string v.time)
    v.detail
