type problem = { invariant : string; detail : string }

type t = {
  (* node -> highest cpi it voted an instance change for *)
  votes : (int, int) Hashtbl.t;
  (* node -> highest cpi it completed an instance change for *)
  changes : (int, int) Hashtbl.t;
  mutable vote_events : int;
  mutable change_events : int;
  mutable token : Bus.token option;
}

let create () =
  {
    votes = Hashtbl.create 8;
    changes = Hashtbl.create 8;
    vote_events = 0;
    change_events = 0;
    token = None;
  }

let on_event t (ev : Event.t) =
  match ev.kind with
  | Event.Instance_change_vote { cpi } ->
    t.vote_events <- t.vote_events + 1;
    let prev = Option.value ~default:(-1) (Hashtbl.find_opt t.votes ev.node) in
    if cpi > prev then Hashtbl.replace t.votes ev.node cpi
  | Event.Instance_changed { cpi; recovery = _ } ->
    t.change_events <- t.change_events + 1;
    let prev = Option.value ~default:(-1) (Hashtbl.find_opt t.changes ev.node) in
    if cpi > prev then Hashtbl.replace t.changes ev.node cpi
  | _ -> ()

let attach () =
  let t = create () in
  t.token <- Some (Bus.subscribe (on_event t));
  t

let detach t =
  match t.token with
  | Some tok ->
    Bus.unsubscribe tok;
    t.token <- None
  | None -> ()

let vote_events t = t.vote_events
let change_events t = t.change_events

let max_voted t node = Option.value ~default:(-1) (Hashtbl.find_opt t.votes node)

let max_changed t node =
  Option.value ~default:(-1) (Hashtbl.find_opt t.changes node)

(* Both rules quantify over cpi values some correct node actually voted
   or changed for; a cpi nobody reached trivially satisfies them. *)
let check t ~quorum ~correct =
  let problems = ref [] in
  let problem invariant fmt =
    Printf.ksprintf
      (fun detail -> problems := { invariant; detail } :: !problems)
      fmt
  in
  (* Rule 1: an instance change completed by one correct node must have
     completed on every correct node (the change is a coordinated,
     deterministic consequence of a vote quorum every correct node
     eventually collects). *)
  List.iter
    (fun n ->
      let c = max_changed t n in
      if c >= 0 then
        List.iter
          (fun m ->
            if max_changed t m < c then
              problem "instance-change-completion"
                "node %d completed instance change cpi=%d but node %d \
                 stopped at cpi=%d"
                n c m (max_changed t m))
          correct)
    correct;
  (* Rule 2: once a quorum of correct nodes voted for cpi >= c, the
     change for c must complete on every correct node — a triggered
     instance change may not stall. *)
  let voted_cpis =
    List.filter_map (fun n -> if max_voted t n >= 0 then Some (max_voted t n) else None)
      correct
    |> List.sort_uniq compare
  in
  List.iter
    (fun c ->
      let votes_for =
        List.length (List.filter (fun n -> max_voted t n >= c) correct)
      in
      if votes_for >= quorum then
        List.iter
          (fun m ->
            if max_changed t m < c then
              problem "instance-change-progress"
                "%d correct nodes voted for cpi>=%d (quorum %d) but node %d \
                 never completed the change (reached cpi=%d)"
                votes_for c quorum m (max_changed t m))
          correct)
    voted_cpis;
  List.rev !problems

let pp_problem ppf p =
  Format.fprintf ppf "[%s] %s" p.invariant p.detail
