(** Global structured-event bus.

    Instrumented code guards every emission site with {!active} so the
    disabled path costs one load and one branch — no event record is
    allocated, no closure runs:

    {[
      if Bftaudit.Bus.active () then
        Bftaudit.Bus.emit { time; node; instance; kind = ... }
    ]}

    Sinks (the auditor, trace captures, the metrics bridge, ad-hoc
    listeners) subscribe and unsubscribe dynamically; events are
    delivered to every sink in subscription order.  While at least one
    sink is subscribed, the legacy [Dessim.Trace] string stream is
    bridged onto the bus as {!Event.Log} events. *)

type token
(** Identifies one subscription; pass it back to {!unsubscribe}. *)

val active : unit -> bool
(** True while at least one sink is subscribed.  Check this before
    allocating an event record on a hot path. *)

val subscribe : (Event.t -> unit) -> token
(** Add a sink; it receives every subsequent {!emit}. *)

val unsubscribe : token -> unit
(** Remove a sink; unknown tokens are ignored. *)

val emit : Event.t -> unit
(** Deliver an event to every sink, in subscription order.  Safe but
    pointless when {!active} is false. *)

val emit_at :
  Dessim.Time.t -> node:int -> instance:int -> Event.kind -> unit
(** Convenience wrapper building the {!Event.t} record, for sites that
    already checked {!active}. *)
